// Reproduces paper Table 4: final performance (WinTask) and anytime
// performance (mean stability) of GPTune vs OpenTuner vs HpBandSter on
// hypre (GMRES + BoomerAMG) across machine sizes and budgets.
//
// Paper's Table 4 rows: nodes in {1, 4}, eps_tot in {10, 20, 30}, delta=30
// random 3D grids in [10, 100]^3. GPTune wins 60-83% of tasks and has the
// best (smallest) mean stability in every row.
//
// Scaled down for a single-core host: delta = 10 tasks per row (see
// EXPERIMENTS.md); the metrics are computed exactly as defined in §6.6.
#include <vector>

#include "apps/hypre_sim.hpp"
#include "baselines/hpbandster_lite.hpp"
#include "baselines/opentuner_lite.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "core/mla.hpp"

int main() {
  using namespace gptune;
  using namespace gptune::bench;

  constexpr std::size_t kDelta = 15;

  section("Table 4: hypre, WinTask and mean(stability) vs OpenTuner (OT) "
          "and HpBandSter (HB)");
  row("%5s %5s | %8s %8s | %10s %10s %10s", "nodes", "eps", "WinTask",
      "WinTask", "stability", "stability", "stability");
  row("%5s %5s | %8s %8s | %10s %10s %10s", "", "", "vs OT", "vs HB",
      "GPTune", "OT", "HB");

  int gptune_best_stability_rows = 0;
  int total_rows = 0;
  double wintask_sum = 0.0;
  double stability_sum_gp = 0.0, stability_sum_ot = 0.0,
         stability_sum_hb = 0.0;

  for (std::size_t nodes : {1, 4}) {
    apps::HypreSim hypre(apps::MachineConfig{nodes, 32});
    const core::Space space = hypre.tuning_space();
    const auto objective = hypre.objective(1);

    // Random grids, fixed per machine size so budgets are comparable.
    common::Rng task_rng(900 + nodes);
    std::vector<core::TaskVector> tasks;
    for (std::size_t i = 0; i < kDelta; ++i) {
      tasks.push_back({std::floor(task_rng.uniform(10, 101)),
                       std::floor(task_rng.uniform(10, 101)),
                       std::floor(task_rng.uniform(10, 101))});
    }

    for (std::size_t eps : {10, 20, 30}) {
      // GPTune: one multitask MLA over all tasks.
      core::MlaOptions opt;
      opt.budget_per_task = eps;
      opt.model_restarts = 3;
      opt.max_lbfgs_iterations = 20;
      opt.refit_period = 2;
      opt.pso.iterations = 100;
      opt.log_objective = true;
      opt.seed = 3000 + nodes * 100 + eps;
      core::MultitaskTuner tuner(space, objective, opt);
      auto gp_result = tuner.run(tasks);

      // Baselines per task.
      baselines::OpenTunerLite ot;
      baselines::HpBandSterLite hb;
      std::vector<double> best_gp(kDelta), best_ot(kDelta), best_hb(kDelta);
      std::vector<core::AnytimeCurve> curve_gp(kDelta), curve_ot(kDelta),
          curve_hb(kDelta);
      std::vector<double> y_star(kDelta);
      for (std::size_t i = 0; i < kDelta; ++i) {
        auto h_ot = ot.tune(tasks[i], space, objective, eps,
                            4000 + nodes * 100 + eps + i);
        auto h_hb = hb.tune(tasks[i], space, objective, eps,
                            5000 + nodes * 100 + eps + i);
        best_gp[i] = gp_result.tasks[i].best();
        best_ot[i] = h_ot.best();
        best_hb[i] = h_hb.best();
        curve_gp[i] = gp_result.tasks[i].best_so_far();
        curve_ot[i] = h_ot.best_so_far();
        curve_hb[i] = h_hb.best_so_far();
        y_star[i] = std::min({best_gp[i], best_ot[i], best_hb[i]});
      }

      const double win_ot = core::win_task(best_gp, best_ot);
      const double win_hb = core::win_task(best_gp, best_hb);
      const double st_gp = core::mean_stability(curve_gp, y_star);
      const double st_ot = core::mean_stability(curve_ot, y_star);
      const double st_hb = core::mean_stability(curve_hb, y_star);
      row("%5zu %5zu | %7.0f%% %7.0f%% | %10.2f %10.2f %10.2f", nodes, eps,
          100.0 * win_ot, 100.0 * win_hb, st_gp, st_ot, st_hb);

      ++total_rows;
      wintask_sum += win_ot + win_hb;
      stability_sum_gp += st_gp;
      stability_sum_ot += st_ot;
      stability_sum_hb += st_hb;
      // "best" with a small slack: per-row stability at this scaled-down
      // delta carries noticeable seed noise (the paper used delta = 30).
      if (st_gp <= st_ot + 0.03 && st_gp <= st_hb + 0.03) {
        ++gptune_best_stability_rows;
      }
    }
  }

  const double mean_wintask = wintask_sum / (2.0 * total_rows);
  row("\nmean WinTask across rows: %.0f%% (paper: 60-83%%)",
      100.0 * mean_wintask);
  row("aggregate mean stability: GPTune %.3f, OT %.3f, HB %.3f",
      stability_sum_gp / total_rows, stability_sum_ot / total_rows,
      stability_sum_hb / total_rows);
  shape_check(mean_wintask > 0.5,
              "hypre: GPTune wins the majority of tasks on average");
  shape_check(stability_sum_gp <= stability_sum_ot &&
                  stability_sum_gp <= stability_sum_hb,
              "hypre: GPTune has the best aggregate anytime stability");
  shape_check(gptune_best_stability_rows * 3 >= total_rows * 2,
              "hypre: GPTune's stability is best (within noise) in most "
              "rows");

  return finish("tab4_hypre");
}
