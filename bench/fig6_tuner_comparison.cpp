// Reproduces paper Fig. 6: GPTune vs OpenTuner vs HpBandSter, best-runtime
// ratios per task.
//
// Left: PDGEQRF, delta = 10 random tasks (m, n < 20000), eps_tot = 10,
//   64 nodes. Paper: GPTune beats OpenTuner on 7/10 tasks (up to 4.9X) and
//   HpBandSter on 8/10 (up to 2.9X).
// Right: SuperLU_DIST, the 7 PARSEC matrices, eps_tot = 20, 32 nodes.
//   Paper: GPTune beats OpenTuner on 6/7 (up to 1.6X) and HpBandSter on
//   7/7 (up to 1.3X).
// GPTune runs one multitask MLA over all tasks; the baselines (which have
// no multitask capability) run per task, exactly as in the paper.
#include <algorithm>
#include <vector>

#include "apps/scalapack_sim.hpp"
#include "apps/superlu_sim.hpp"
#include "baselines/hpbandster_lite.hpp"
#include "baselines/opentuner_lite.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "core/mla.hpp"

namespace {

using namespace gptune;

struct ComparisonResult {
  std::vector<double> gptune, opentuner, hpbandster;
};

ComparisonResult compare(const core::Space& space,
                         const core::MultiObjectiveFn& objective,
                         const std::vector<core::TaskVector>& tasks,
                         std::size_t eps, std::uint64_t seed) {
  ComparisonResult out;
  core::MlaOptions opt;
  opt.budget_per_task = eps;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 25;
  opt.refit_period = 2;
  opt.log_objective = true;
  opt.seed = seed;
  core::MultitaskTuner tuner(space, objective, opt);
  auto result = tuner.run(tasks);
  for (const auto& th : result.tasks) out.gptune.push_back(th.best());

  baselines::OpenTunerLite ot;
  baselines::HpBandSterLite hb;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    out.opentuner.push_back(
        ot.tune(tasks[i], space, objective, eps, seed + 100 + i).best());
    out.hpbandster.push_back(
        hb.tune(tasks[i], space, objective, eps, seed + 200 + i).best());
  }
  return out;
}

void report(const std::vector<std::string>& labels,
            const ComparisonResult& r, const std::string& what,
            std::size_t min_wins_ot, std::size_t min_wins_hb) {
  using namespace gptune::bench;
  const auto ratio_ot = core::best_ratio(r.gptune, r.opentuner);
  const auto ratio_hb = core::best_ratio(r.gptune, r.hpbandster);
  row("%-20s %10s %10s %10s %9s %9s", "task", "GPTune(s)", "OT(s)", "HB(s)",
      "OT/GPT", "HB/GPT");
  std::size_t wins_ot = 0, wins_hb = 0;
  double max_ot = 0.0, max_hb = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    row("%-20s %10.4f %10.4f %10.4f %9.2f %9.2f", labels[i].c_str(),
        r.gptune[i], r.opentuner[i], r.hpbandster[i], ratio_ot[i],
        ratio_hb[i]);
    if (ratio_ot[i] >= 1.0) ++wins_ot;
    if (ratio_hb[i] >= 1.0) ++wins_hb;
    max_ot = std::max(max_ot, ratio_ot[i]);
    max_hb = std::max(max_hb, ratio_hb[i]);
  }
  row("GPTune >= OpenTuner on %zu/%zu tasks (up to %.2fX); >= HpBandSter "
      "on %zu/%zu (up to %.2fX)",
      wins_ot, labels.size(), max_ot, wins_hb, labels.size(), max_hb);
  shape_check(wins_ot >= min_wins_ot,
              what + ": GPTune wins most tasks vs OpenTuner");
  shape_check(wins_hb >= min_wins_hb,
              what + ": GPTune wins most tasks vs HpBandSter");
  shape_check(max_ot > 1.2 || max_hb > 1.2,
              what + ": best-case advantage is substantial (>1.2X)");
}

}  // namespace

int main() {
  using namespace gptune::bench;

  // ---------------- PDGEQRF ----------------
  section("Fig. 6 (left): PDGEQRF, delta=10, eps_tot=10, 64 nodes");
  apps::MachineConfig big;
  big.nodes = 64;
  apps::PdgeqrfSim qr(big);
  common::Rng rng(5);
  std::vector<core::TaskVector> qr_tasks;
  std::vector<std::string> qr_labels;
  for (int i = 0; i < 10; ++i) {
    const double m = std::floor(rng.uniform(1000, 20000));
    const double n = std::floor(rng.uniform(1000, 20000));
    qr_tasks.push_back({m, n});
    qr_labels.push_back(std::to_string(static_cast<int>(m)) + "x" +
                        std::to_string(static_cast<int>(n)));
  }
  auto qr_result =
      compare(qr.tuning_space(), qr.objective(3), qr_tasks, 10, 1000);
  report(qr_labels, qr_result, "PDGEQRF", 6, 6);

  // ---------------- SuperLU_DIST ----------------
  section("Fig. 6 (right): SuperLU_DIST, 7 PARSEC matrices, eps_tot=20, "
          "32 nodes");
  apps::SuperluSim superlu(apps::MachineConfig{32, 32});
  const std::vector<std::string> matrices = {
      "Si2", "SiH4", "SiNa", "Na5", "benzene", "Si10H16", "Si5H12"};
  std::vector<core::TaskVector> slu_tasks;
  for (const auto& name : matrices) {
    slu_tasks.push_back(
        {static_cast<double>(apps::SuperluSim::matrix_index(name))});
  }
  auto slu_result = compare(superlu.tuning_space(), superlu.objective_time(1),
                            slu_tasks, 20, 2000);
  report(matrices, slu_result, "SuperLU_DIST", 4, 5);

  return finish("fig6_tuner_comparison");
}
