// Scaling study for the parallel multistart LCM trainer (paper Fig. 1
// master/model-worker split, §4.3 multistart optimization).
//
// Workload: the Table-3 PDGEQRF multitask setup — the shared expensive task
// plus random cheaper ones, log simulated runtimes — fit with n_start
// L-BFGS restarts. The serial fit's per-restart wall-clock feeds a
// virtual-clock makespan model (greedy list scheduling onto N ranks, same
// methodology as fig3_parallel_scaling: this container has one core, so
// real threads cannot exhibit wall-clock speedup) to report the 1-vs-N
// worker speedup a real multi-core run would see. A real 4-thread fit then
// proves the determinism contract: bitwise-identical hyperparameters.
#include <cmath>
#include <vector>

#include "apps/scalapack_sim.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "gp/trainer.hpp"
#include "runtime/virtual_clock.hpp"

namespace {

using namespace gptune;

// Table-3 style PDGEQRF workload: delta tasks, eps samples each, objective
// log simulated seconds, configurations drawn feasibly from the tuning
// space and normalized into the unit box the LCM expects.
gp::MultiTaskData make_workload(std::size_t tasks, std::size_t samples) {
  apps::MachineConfig big_machine;
  big_machine.nodes = 64;
  apps::PdgeqrfSim qr(big_machine);
  const core::Space space = qr.tuning_space();

  std::vector<core::TaskVector> qr_tasks = {{23324, 26545}};
  common::Rng task_rng(11);
  while (qr_tasks.size() < tasks) {
    qr_tasks.push_back({std::floor(task_rng.uniform(2000, 23000)),
                        std::floor(task_rng.uniform(2000, 23000))});
  }

  common::Rng rng(2021);
  gp::MultiTaskData data;
  for (const auto& task : qr_tasks) {
    gp::Matrix x(samples, space.dim());
    gp::Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      const core::Config config = space.sample_feasible(rng);
      const auto unit = space.normalize(config);
      for (std::size_t m = 0; m < space.dim(); ++m) x(j, m) = unit[m];
      y[j] = std::log(qr.best_of_trials(task, config, 3));
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  return data;
}

}  // namespace

int main() {
  using namespace gptune::bench;

  BenchJson bench_json("BENCH_trainer.json");
  const std::size_t kTasks = 8, kSamples = 14, kRestarts = 16;
  const auto data = make_workload(kTasks, kSamples);

  section("Multistart LCM trainer scaling: PDGEQRF workload (delta=8, "
          "eps=14, n_start=16)");

  gp::LcmFitOptions opt;
  opt.num_latent = 3;
  opt.num_restarts = kRestarts;
  opt.max_lbfgs_iterations = 30;
  opt.seed = 5;
  opt.num_workers = 1;

  gp::LcmFitStats serial_stats;
  auto serial = gp::fit_lcm(data, opt, &serial_stats);
  if (!serial) {
    row("serial fit failed; cannot run the study");
    return finish("bench_trainer_scaling");
  }

  double restart_sum = 0.0;
  for (double s : serial_stats.restart_seconds) restart_sum += s;
  // Everything outside the restarts (context build, posterior build,
  // reduction) stays serial in the virtual schedule.
  const double overhead = std::max(0.0, serial_stats.fit_seconds - restart_sum);

  row("serial fit: %.3f s total (%.3f s in %zu restarts, %.3f s serial "
      "overhead), best lml %.2f",
      serial_stats.fit_seconds, restart_sum,
      serial_stats.restart_seconds.size(), overhead, serial_stats.best_lml);
  row("L-BFGS evaluations: %zu; Gram cache: %zu hits / %zu misses "
      "(%.0f%% of Gram evaluations served from cache)",
      serial_stats.total_lbfgs_evaluations, serial_stats.gram_cache_hits,
      serial_stats.gram_cache_misses,
      100.0 * static_cast<double>(serial_stats.gram_cache_hits) /
          std::max<std::size_t>(
              1, serial_stats.gram_cache_hits + serial_stats.gram_cache_misses));
  row("serial throughput: %.1f restarts/s", serial_stats.restarts_per_second);

  bench_json.record("fit_seconds", serial_stats.fit_seconds, 1, opt.seed);
  bench_json.record("restarts_per_second", serial_stats.restarts_per_second,
                    1, opt.seed);
  bench_json.record("lbfgs_evaluations",
                    static_cast<double>(serial_stats.total_lbfgs_evaluations),
                    1, opt.seed);
  bench_json.record(
      "gram_cache_hit_rate",
      static_cast<double>(serial_stats.gram_cache_hits) /
          std::max<std::size_t>(1, serial_stats.gram_cache_hits +
                                       serial_stats.gram_cache_misses),
      1, opt.seed);

  section("Virtual-clock speedup (greedy schedule of measured restart times)");
  row("%8s %12s %9s %11s", "workers", "virtual s", "speedup", "efficiency");
  double speedup_at_4 = 0.0;
  for (std::size_t workers : {1, 2, 4, 8}) {
    rt::VirtualRanks ranks(workers);
    ranks.schedule_greedy(serial_stats.restart_seconds);
    const double virtual_seconds = overhead + ranks.makespan();
    const double speedup = serial_stats.fit_seconds / virtual_seconds;
    if (workers == 4) speedup_at_4 = speedup;
    row("%8zu %12.4f %8.2fx %10.0f%%", workers, virtual_seconds, speedup,
        100.0 * speedup / static_cast<double>(workers));
    bench_json.record("virtual_fit_seconds", virtual_seconds, workers,
                      opt.seed);
    bench_json.record("virtual_speedup", speedup, workers, opt.seed);
  }
  shape_check(speedup_at_4 >= 2.0,
              "4 model workers give >= 2x speedup over 1 on the multistart "
              "fit (paper Fig. 1 master/worker split)");

  section("Determinism across worker counts (real threads)");
  gp::LcmFitOptions par = opt;
  par.num_workers = 4;
  gp::LcmFitStats par_stats;
  auto parallel = gp::fit_lcm(data, par, &par_stats);
  if (!parallel) {
    row("parallel fit failed");
    shape_check(false, "4-worker fit produces a model");
    return finish("bench_trainer_scaling");
  }
  row("4-worker fit: %.3f s wall on this host (%zu workers used), "
      "best lml %.2f",
      par_stats.fit_seconds, par_stats.workers_used, par_stats.best_lml);

  bool identical = serial->theta().size() == parallel->theta().size() &&
                   serial->log_likelihood() == parallel->log_likelihood();
  if (identical) {
    for (std::size_t k = 0; k < serial->theta().size(); ++k) {
      if (serial->theta()[k] != parallel->theta()[k]) {
        identical = false;
        break;
      }
    }
  }
  shape_check(identical,
              "1-worker and 4-worker fits are bitwise identical "
              "(hyperparameters and log-likelihood, exact ==)");
  shape_check(par_stats.total_lbfgs_evaluations ==
                  serial_stats.total_lbfgs_evaluations,
              "worker count does not change the optimization trajectory "
              "(same L-BFGS evaluation count)");

  return finish("bench_trainer_scaling");
}
