// google-benchmark microbenchmarks of the kernels the tuner's cost is made
// of: covariance assembly, Cholesky factorization (unblocked vs blocked),
// LCM likelihood+gradient, posterior prediction, and EI search. These are
// the raw numbers behind the Fig. 3 phase-time scaling.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/acquisition.hpp"
#include "gp/kernel.hpp"
#include "gp/lcm.hpp"
#include "gp/trainer.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "opt/pso.hpp"

namespace {

using namespace gptune;

linalg::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  linalg::Matrix a(n, n + 4);
  for (auto& v : a.data()) v = rng.normal();
  linalg::Matrix s = linalg::syrk(a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += 1.0;
  return s;
}

gp::MultiTaskData random_data(std::size_t tasks, std::size_t samples,
                              std::size_t dim, std::uint64_t seed) {
  common::Rng rng(seed);
  gp::MultiTaskData data;
  for (std::size_t i = 0; i < tasks; ++i) {
    gp::Matrix x(samples, dim);
    gp::Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      for (std::size_t m = 0; m < dim; ++m) x(j, m) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  return data;
}

void BM_CholeskyUnblocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 1);
  for (auto _ : state) {
    auto f = linalg::CholeskyFactor::factor(a);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CholeskyUnblocked)->RangeMultiplier(2)->Range(64, 512)
    ->Complexity(benchmark::oNCubed);

void BM_CholeskyBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_spd(n, 2);
  for (auto _ : state) {
    auto f = linalg::blocked_cholesky(a, 96);
    benchmark::DoNotOptimize(f);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CholeskyBlocked)->RangeMultiplier(2)->Range(64, 512)
    ->Complexity(benchmark::oNCubed);

void BM_SeArdGram(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  gp::Matrix x(n, 4);
  for (auto& v : x.data()) v = rng.uniform();
  const std::vector<double> ls = {0.3, 0.5, 0.4, 0.6};
  for (auto _ : state) {
    auto k = gp::se_ard_gram(x, ls);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_SeArdGram)->RangeMultiplier(2)->Range(64, 512);

// Factor extension for 16 appended rows — the O(N^2 k) hot path of the
// incremental refit (DESIGN.md §3.10); contrast with BM_CholeskyBlocked's
// O(N^3) at the same N.
void BM_CholeskyExtend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t n_old = n - 16;
  const auto a = random_spd(n, 4);
  const auto full = linalg::blocked_cholesky(a, 128);
  const auto base =
      linalg::blocked_cholesky(a.block(0, 0, n_old, n_old), 128);
  for (auto _ : state) {
    linalg::Matrix w(n, n, 0.0);
    for (std::size_t r = 0; r < n_old; ++r) {
      for (std::size_t c = 0; c <= r; ++c) w(r, c) = base->lower()(r, c);
    }
    for (std::size_t r = n_old; r < n; ++r) {
      for (std::size_t c = 0; c <= r; ++c) w(r, c) = a(r, c);
    }
    bool ok = linalg::blocked_cholesky_extend(w, n_old, 128);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(w);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CholeskyExtend)->RangeMultiplier(2)->Range(64, 512)
    ->Complexity(benchmark::oNSquared);

// Cross-gram strip: the k x n covariance rows the extension feeds on.
void BM_SeArdCrossStrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  gp::Matrix x(n, 4), x_new(16, 4);
  for (auto& v : x.data()) v = rng.uniform();
  for (auto& v : x_new.data()) v = rng.uniform();
  const std::vector<double> ls = {0.3, 0.5, 0.4, 0.6};
  gp::Matrix strip;
  for (auto _ : state) {
    gp::se_ard_cross_strip_into(x_new, x, ls, &strip);
    benchmark::DoNotOptimize(strip);
  }
}
BENCHMARK(BM_SeArdCrossStrip)->RangeMultiplier(2)->Range(64, 512);

// Structured LCM Gram assembly for 16 appended rows vs the full Eq. (4)
// matrix (compare against BM_SeArdGram scaled by Q).
void BM_LcmCovarianceRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(6);
  gp::LcmShape shape{2, 4, 2};
  gp::Matrix all_x(n, 4);
  for (auto& v : all_x.data()) v = rng.uniform();
  std::vector<std::size_t> task_of(n);
  for (std::size_t i = 0; i < n; ++i) task_of[i] = i % 2;
  std::vector<double> theta(shape.num_hyperparameters(), -1.0);
  for (auto _ : state) {
    auto strip =
        gp::lcm_covariance_rows(shape, theta, all_x, task_of, n - 16);
    benchmark::DoNotOptimize(strip);
  }
}
BENCHMARK(BM_LcmCovarianceRows)->RangeMultiplier(2)->Range(64, 512);

void BM_LcmLikelihoodGradient(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const auto data = random_data(5, samples, 3, 4);
  gp::Matrix ax;
  gp::Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  gp::LcmShape shape{3, 3, 5};
  common::Rng rng(5);
  const auto theta = gp::random_lcm_theta(shape, rng);
  std::vector<double> grad;
  for (auto _ : state) {
    auto lml = gp::lcm_lml(shape, theta, ax, ay, task_of, &grad);
    benchmark::DoNotOptimize(lml);
  }
  state.SetComplexityN(static_cast<std::int64_t>(5 * samples));
}
BENCHMARK(BM_LcmLikelihoodGradient)->Arg(10)->Arg(20)->Arg(40)->Arg(80)
    ->Complexity(benchmark::oNCubed);

void BM_LcmPredict(benchmark::State& state) {
  const auto samples = static_cast<std::size_t>(state.range(0));
  const auto data = random_data(5, samples, 3, 6);
  gp::LcmShape shape{3, 3, 5};
  common::Rng rng(7);
  auto model = gp::LcmModel::build(data, shape,
                                   gp::random_lcm_theta(shape, rng));
  const gp::Vector x_star = {0.3, 0.5, 0.7};
  for (auto _ : state) {
    auto pred = model->predict(2, x_star);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_LcmPredict)->Arg(10)->Arg(40)->Arg(160);

void BM_EiSearchPso(benchmark::State& state) {
  const auto data = random_data(3, 20, 3, 8);
  gp::LcmShape shape{2, 3, 3};
  common::Rng rng(9);
  auto model = gp::LcmModel::build(data, shape,
                                   gp::random_lcm_theta(shape, rng));
  for (auto _ : state) {
    common::Rng search_rng(11);
    auto acq = [&](const opt::Point& u) {
      const auto pred = model->predict(0, u);
      return -core::expected_improvement(pred.mean, pred.variance, 0.0);
    };
    auto best = opt::pso_minimize(acq, opt::Box::unit(3), search_rng);
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_EiSearchPso);

void BM_ExpectedImprovement(benchmark::State& state) {
  double acc = 0.0;
  for (auto _ : state) {
    acc += core::expected_improvement(0.5, 1.3, 0.7);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ExpectedImprovement);

}  // namespace
