// Reproduces paper Fig. 3: modeling- and search-phase time for 1 vs 32
// ranks on the analytical objective, delta = 20 tasks, one MLA iteration,
// as the per-task sample count grows.
//
// Serial times are measured wall-clock on this host. The 32-rank times are
// virtual-clock makespans (see DESIGN.md §1): real 32-way speedups cannot
// materialize on a 1-core container, so
//   * the modeling phase charges the blocked-Cholesky tile critical path
//     over P ranks (the ScaLAPACK role of paper §4.3), and
//   * the search phase list-schedules the measured per-task search times
//     onto P ranks (the paper's task-over-ranks parallelization, speedup
//     bounded by delta = 20).
// Expected shapes: modeling ~ O((eps*delta)^3), search ~ O((eps*delta)^2),
// large modeling speedups at large covariance sizes, search speedup <= 20.
//
// A third axis covers the objective-worker group (paper Fig. 1): full MLA
// runs whose evaluation engine charges the simulated application runtime
// as virtual cost, at increasing objective_workers. The trajectory is
// identical at every worker count; only the objective-phase makespan
// shrinks. Both wall-clock and virtual-clock per-phase times are printed.
// A fourth axis covers the persistent search-worker group: the measured
// per-task search times list-scheduled over growing worker counts, plus
// full MLA runs at increasing search_workers (one group spawn per run,
// bitwise-identical trajectory). Its rows go to BENCH_search.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "apps/analytical.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "core/acquisition.hpp"
#include "core/mla.hpp"
#include "gp/trainer.hpp"
#include "opt/pso.hpp"
#include "runtime/virtual_clock.hpp"

namespace {

using namespace gptune;

// Critical-path flops of a blocked right-looking Cholesky of size n with
// tile size nb over p ranks (panel POTRF serial; TRSM row and GEMM update
// tiles list-scheduled).
double cholesky_critical_path(double n, double nb, double p) {
  const double t_potrf = nb * nb * nb / 3.0;
  const double t_trsm = nb * nb * nb;
  const double t_gemm = 2.0 * nb * nb * nb;
  double makespan = 0.0;
  for (double k = 0.0; k < n; k += nb) {
    const double below = std::max(0.0, std::floor((n - k - nb) / nb));
    makespan += t_potrf;
    makespan += std::ceil(below / p) * t_trsm;
    const double update_tiles = below * (below + 1.0) / 2.0;
    makespan += std::ceil(update_tiles / p) * t_gemm;
  }
  return makespan;
}

}  // namespace

int main() {
  using namespace gptune::bench;

  BenchJson bench_json("BENCH_fig3.json");
  constexpr std::size_t kDelta = 20;
  constexpr std::size_t kRanks = 32;
  const std::vector<std::size_t> eps_values = {10, 20, 40, 80};

  std::vector<core::TaskVector> tasks;
  for (std::size_t i = 0; i < kDelta; ++i) {
    tasks.push_back({0.5 * static_cast<double>(i)});
  }

  section("Fig. 3: modeling & search time, delta=20 tasks, 1 vs 32 ranks");
  row("%6s %6s | %12s %12s %8s | %12s %12s %8s", "eps", "N", "model_1(s)",
      "model_32(s)", "speedup", "search_1(s)", "search_32(s)", "speedup");

  std::vector<double> model_serial, search_serial, sizes;
  std::vector<double> last_per_task_search;
  double model_speedup_last = 0.0, search_speedup_last = 0.0;
  double model_speedup_first = 0.0;

  for (std::size_t eps : eps_values) {
    // One MLA iteration: eps-1 random samples per task, then one
    // modeling phase and one search phase.
    common::Rng rng(31 + eps);
    gp::MultiTaskData data;
    for (std::size_t i = 0; i < kDelta; ++i) {
      gp::Matrix x(eps - 1, 1);
      gp::Vector y(eps - 1);
      for (std::size_t j = 0; j + 1 < eps; ++j) {
        x(j, 0) = rng.uniform();
        y[j] = apps::analytical_objective(tasks[i][0], x(j, 0));
      }
      data.x.push_back(std::move(x));
      data.y.push_back(std::move(y));
    }
    const double n = static_cast<double>(data.total_samples());

    // --- modeling phase (measured serial) ---
    gp::LcmFitOptions fit;
    fit.num_latent = 2;
    fit.num_restarts = 1;
    fit.max_lbfgs_iterations = 4;
    fit.seed = eps;
    common::Timer model_timer;
    auto model = gp::fit_lcm(data, fit);
    const double model_1 = model_timer.seconds();
    if (!model) {
      row("eps=%zu: model fit failed", eps);
      continue;
    }

    // Simulated 32-rank modeling: the O(N^3) factorization dominates; its
    // distributed-tile critical path sets the parallel time.
    const double cp1 = cholesky_critical_path(n, 128.0, 1.0);
    const double cp32 =
        cholesky_critical_path(n, 128.0, static_cast<double>(kRanks));
    const double model_32 = model_1 * cp32 / cp1;

    // --- search phase (per-task times measured, then list-scheduled) ---
    std::vector<double> per_task_search(kDelta);
    double search_1 = 0.0;
    for (std::size_t i = 0; i < kDelta; ++i) {
      double incumbent = 1e300;
      for (double v : data.y[i]) incumbent = std::min(incumbent, v);
      common::Timer t;
      common::Rng search_rng(1000 + i);
      opt::PsoOptions pso;
      auto acq = [&](const opt::Point& u) {
        const auto pred = model->predict(i, u);
        return -core::expected_improvement(pred.mean, pred.variance,
                                           incumbent);
      };
      opt::pso_minimize(acq, opt::Box::unit(1), search_rng, pso);
      per_task_search[i] = t.seconds();
      search_1 += per_task_search[i];
    }
    rt::VirtualRanks ranks(kRanks);
    ranks.schedule_greedy(per_task_search);
    const double search_32 = ranks.makespan();
    last_per_task_search = per_task_search;

    row("%6zu %6.0f | %12.3f %12.3f %8.1f | %12.3f %12.3f %8.1f", eps, n,
        model_1, model_32, model_1 / model_32, search_1, search_32,
        search_1 / search_32);

    bench_json.record("model_seconds_eps" + std::to_string(eps), model_1, 1,
                      eps);
    bench_json.record("model_seconds_eps" + std::to_string(eps), model_32,
                      kRanks, eps);
    bench_json.record("search_seconds_eps" + std::to_string(eps), search_1, 1,
                      eps);
    bench_json.record("search_seconds_eps" + std::to_string(eps), search_32,
                      kRanks, eps);

    sizes.push_back(n);
    model_serial.push_back(model_1);
    search_serial.push_back(search_1);
    if (model_speedup_first == 0.0) model_speedup_first = model_1 / model_32;
    model_speedup_last = model_1 / model_32;
    search_speedup_last = search_1 / search_32;
  }

  // Scaling exponents from the largest size pair.
  const std::size_t last = sizes.size() - 1;
  const double model_exp =
      std::log(model_serial[last] / model_serial[last - 1]) /
      std::log(sizes[last] / sizes[last - 1]);
  const double search_exp =
      std::log(search_serial[last] / search_serial[last - 1]) /
      std::log(sizes[last] / sizes[last - 1]);
  row("\nfitted scaling exponents (largest sizes): modeling %.2f "
      "(theory 3), search %.2f (theory 2)",
      model_exp, search_exp);

  shape_check(model_exp > 2.0 && model_exp < 4.0,
              "modeling phase scales ~O(N^3)");
  shape_check(search_exp > 1.0 && search_exp < 3.0,
              "search phase scales ~O(N^2)");
  shape_check(model_speedup_last > 6.0,
              "32-rank modeling speedup is large at large covariance sizes");
  shape_check(model_speedup_last > model_speedup_first,
              "modeling speedup grows with problem size (toward ideal)");
  shape_check(search_speedup_last <= 20.0 + 1e-9 && search_speedup_last > 4.0,
              "search speedup bounded by delta=20, substantial (paper: 11X)");

  // --- objective-worker scaling (paper Fig. 1's third worker group) ---
  section("objective-evaluation scaling: MLA over the evaluation engine, "
          "virtual cost = simulated application runtime");
  row("%8s | %10s %10s %10s | %10s %10s %10s | %8s", "workers", "obj_w(s)",
      "model_w(s)", "search_w(s)", "obj_v(s)", "model_v(s)", "search_v(s)",
      "speedup");

  std::vector<core::TaskVector> mla_tasks;
  for (std::size_t i = 0; i < 8; ++i) {
    mla_tasks.push_back({0.5 + 1.0 * static_cast<double>(i)});
  }
  double obj_virtual_serial = 0.0, speedup_at_4 = 0.0;
  double best_serial = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::MlaOptions opt;
    opt.budget_per_task = 12;
    opt.model_restarts = 1;
    opt.max_lbfgs_iterations = 10;
    opt.seed = 99;
    opt.objective_workers = workers;
    // Virtual cost of one run: the simulated application runtime (the
    // objective itself, floored to stay positive).
    opt.evaluation.virtual_cost = [](const core::TaskVector&,
                                     const core::Config&,
                                     const std::vector<double>& y) {
      return std::abs(y[0]) + 0.1;
    };
    core::MultitaskTuner tuner(apps::analytical_tuning_space(),
                               apps::analytical_fn(), opt);
    const core::MlaResult result = tuner.run(mla_tasks);

    double best_total = 0.0;
    for (const auto& th : result.tasks) best_total += th.best();
    if (workers == 1) {
      obj_virtual_serial = result.virtual_times.objective;
      best_serial = best_total;
    }
    const double speedup =
        obj_virtual_serial / std::max(1e-12, result.virtual_times.objective);
    if (workers == 4) speedup_at_4 = speedup;
    row("%8zu | %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f | %8.2f",
        workers, result.times.objective, result.times.modeling,
        result.times.search, result.virtual_times.objective,
        result.virtual_times.modeling, result.virtual_times.search, speedup);
    // Same seed => same trajectory at every worker count; the summed best
    // values must agree bitwise with the serial run.
    shape_check(best_total == best_serial,
                "trajectory identical to 1-worker run");

    bench_json.record("objective_virtual_seconds",
                      result.virtual_times.objective, workers, opt.seed);
    bench_json.record("objective_speedup", speedup, workers, opt.seed);
    bench_json.record("best_total", best_total, workers, opt.seed);

    // Per-phase profile (MlaResult.profiles): the same breakdown the
    // telemetry layer traces, summarized per run.
    for (const auto& p : result.profiles) {
      row("    profile %-10s x%-4zu wall %8.3fs  virtual %8.3fs",
          p.phase.c_str(), p.invocations, p.wall_seconds, p.virtual_seconds);
    }
  }
  shape_check(speedup_at_4 >= 2.5,
              "virtual objective-phase speedup >= 2.5x at 4 workers");

  // --- search-worker scaling (the persistent Fig. 1 search group) ---
  // Speedups come from list-scheduling the serially measured per-task
  // search times: on a 1-core container, concurrently measured wall times
  // inflate with the thread count, so the virtual makespan is the honest
  // parallel quantity (DESIGN.md §1).
  BenchJson bench_search("BENCH_search.json");
  section("search-worker scaling: eps=80 per-task searches list-scheduled "
          "over the persistent group (speedup bounded by delta=20)");
  row("%8s | %12s %8s", "workers", "search_v(s)", "speedup");
  double search_ms_serial = 0.0, search_speedup_at_4 = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u, 16u, 32u}) {
    rt::VirtualRanks vranks(workers);
    vranks.schedule_greedy(last_per_task_search);
    const double makespan = vranks.makespan();
    if (workers == 1) search_ms_serial = makespan;
    const double speedup = search_ms_serial / std::max(1e-12, makespan);
    if (workers == 4) search_speedup_at_4 = speedup;
    row("%8zu | %12.3f %8.2f", workers, makespan, speedup);
    bench_search.record("search_virtual_seconds_eps80", makespan, workers,
                        80);
    bench_search.record("search_speedup_eps80", speedup, workers, 80);
  }
  shape_check(search_speedup_at_4 >= 3.0,
              "list-scheduled search speedup >= 3x at 4 workers");

  section("full MLA at increasing search_workers: one group spawn per run, "
          "bitwise-identical trajectory");
  row("%8s | %10s %10s | %8s %6s", "workers", "search_w(s)", "search_v(s)",
      "speedup", "spawns");
  // No speedup assertion on this axis: the spawned workers time-share the
  // container's single core, so each task's measured wall seconds inflate
  // with the worker count and the list-scheduled makespan stays flat —
  // the list-scheduled axis above is the honest speedup measurement.
  double mla_search_serial = 0.0, mla_best_serial = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::MlaOptions opt;
    opt.budget_per_task = 12;
    opt.model_restarts = 1;
    opt.max_lbfgs_iterations = 10;
    opt.seed = 99;
    opt.search_workers = workers;
    core::MultitaskTuner tuner(apps::analytical_tuning_space(),
                               apps::analytical_fn(), opt);
    const std::uint64_t spawns_before =
        telemetry::counter("runtime.spawns").value();
    const core::MlaResult result = tuner.run(mla_tasks);
    const std::uint64_t spawned =
        telemetry::counter("runtime.spawns").value() - spawns_before;

    double best_total = 0.0;
    for (const auto& th : result.tasks) best_total += th.best();
    if (workers == 1) {
      mla_search_serial = result.virtual_times.search;
      mla_best_serial = best_total;
    }
    const double speedup =
        mla_search_serial / std::max(1e-12, result.virtual_times.search);
    row("%8zu | %10.3f %10.3f | %8.2f %6llu", workers, result.times.search,
        result.virtual_times.search, speedup,
        static_cast<unsigned long long>(spawned));

    shape_check(best_total == mla_best_serial,
                "trajectory identical to 1-worker run");
    // Persistent group: the run spawns at most one group — the search
    // workers — not one per iteration (0 with telemetry compiled out or
    // at workers=1, where the dispatch runs inline).
    shape_check(spawned <= 1, "search group spawned once per run");

    bench_search.record("mla_search_virtual_seconds",
                        result.virtual_times.search, workers, opt.seed);
    bench_search.record("mla_search_speedup", speedup, workers, opt.seed);
    bench_search.record("mla_best_total", best_total, workers, opt.seed);
  }

  // --- async pipeline vs the iteration barrier (DESIGN.md §3.9) ---
  // A heterogeneous-cost workload: most configurations simulate a cheap
  // run, a deterministic ~10% are 100x more expensive (the application
  // profile the paper's Fig. 5 workloads show). The sync loop's barrier
  // makes every iteration wait for its slowest run; the async manager
  // keeps streaming candidates past it. Costs are a pure function of the
  // configuration bits, so both modes draw from the same distribution.
  BenchJson bench_async("BENCH_async.json");
  section("async pipeline: heterogeneous-cost workload, iteration barrier "
          "(sync) vs event-driven manager (async)");
  row("%8s | %10s %10s | %8s %10s", "workers", "sync_v(s)", "async_v(s)",
      "speedup", "occupancy");

  const auto hetero_cost = [](const core::TaskVector&, const core::Config& c,
                              const std::vector<double>&) {
    // Hash the configuration into [0, 1); the top decile runs 100x longer.
    const double u = std::sin(997.0 * c[0]) * 43758.5453;
    const double frac = u - std::floor(u);
    return frac > 0.9 ? 10.0 : 0.1;
  };
  auto hetero_options = [&](std::size_t workers) {
    core::MlaOptions opt;
    opt.budget_per_task = 24;
    opt.initial_samples = 6;
    opt.batch_k = 2;
    opt.model_restarts = 1;
    opt.max_lbfgs_iterations = 10;
    opt.seed = 99;
    opt.objective_workers = workers;
    opt.evaluation.virtual_cost = hetero_cost;
    return opt;
  };

  double occupancy_at_4 = 0.0, async_speedup_at_4 = 0.0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    core::MlaOptions sync_opt = hetero_options(workers);
    core::MultitaskTuner sync_tuner(apps::analytical_tuning_space(),
                                    apps::analytical_fn(), sync_opt);
    const double sync_v =
        sync_tuner.run(mla_tasks).virtual_times.objective;

    core::MlaOptions async_opt = hetero_options(workers);
    async_opt.async = true;
    async_opt.async_inflight = 3;
    core::MultitaskTuner async_tuner(apps::analytical_tuning_space(),
                                     apps::analytical_fn(), async_opt);
    const core::MlaResult result = async_tuner.run(mla_tasks);
    const double async_v = result.async_virtual_makespan;
    const double speedup = sync_v / std::max(1e-12, async_v);
    if (workers == 4) {
      occupancy_at_4 = result.worker_occupancy;
      async_speedup_at_4 = speedup;
    }
    row("%8zu | %10.3f %10.3f | %8.2f %9.1f%%", workers, sync_v, async_v,
        speedup, 100.0 * result.worker_occupancy);

    shape_check(
        std::count_if(result.tasks.begin(), result.tasks.end(),
                      [&](const core::TaskHistory& th) {
                        return th.evals.size() == async_opt.budget_per_task;
                      }) == static_cast<std::ptrdiff_t>(result.tasks.size()),
        "async run spends the exact per-task budget");

    bench_async.record("sync_virtual_seconds", sync_v, workers, sync_opt.seed);
    bench_async.record("async_virtual_makespan", async_v, workers,
                       async_opt.seed);
    bench_async.record("async_speedup", speedup, workers, async_opt.seed);
    bench_async.record("async_occupancy", result.worker_occupancy, workers,
                       async_opt.seed);
  }
  // Occupancy depends on which configurations the trajectory visits (the
  // synthetic cost hashes the config bits), so the floor is loose enough to
  // survive ulp-level trajectory shifts while still catching a manager that
  // starves its workers.
  shape_check(occupancy_at_4 >= 0.85,
              "async worker occupancy >= 85% at 4 workers");
  shape_check(async_speedup_at_4 >= 1.5,
              "async virtual-time speedup >= 1.5x over sync at 4 workers");

  return finish("fig3_parallel_scaling");
}
