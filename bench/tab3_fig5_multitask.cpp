// Reproduces paper Table 3 and Fig. 5: single-task vs multitask MLA on
// PDGEQRF, PDSYEVX, M3D_C1, and NIMROD.
//
// Paper claims reproduced as shapes:
//   * multitask reaches minima similar to single-task on the shared task
//     while spending much less total application time (Table 3);
//   * Fig. 5 left: per-task best/worst PDGEQRF runtimes ordered by flop
//     count; Fig. 5 right: PDSYEVX best runtime scales ~O(m^3), larger
//     eps_tot slightly improves the best;
//   * PDSYEVX single-task: the best over all eps_tot samples beats the
//     best over the eps_tot/2 initial samples (Bayesian optimization
//     usefulness);
//   * M3D_C1/NIMROD: tuning on cheap few-step tasks transfers to the
//     expensive many-step task.
//
// The "objective" column is *simulated application seconds* (the sum of
// all simulated runs, 3 trials per evaluation where the paper repeats 3x);
// "modeling"/"search" are host wall-clock of the tuner itself.
#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/mhd_sim.hpp"
#include "apps/scalapack_sim.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/mla.hpp"

namespace {

using namespace gptune;

// Wraps a best-of-trials simulator objective while accumulating the total
// simulated application seconds (all trials).
template <typename RuntimeFn>
core::MultiObjectiveFn counting_objective(RuntimeFn runtime, int trials,
                                          double* total_app_seconds) {
  return [runtime, trials, total_app_seconds](
             const core::TaskVector& t,
             const core::Config& x) -> std::vector<double> {
    double best = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      const double v = runtime(t, x, static_cast<std::uint64_t>(trial));
      *total_app_seconds += v;
      if (trial == 0 || v < best) best = v;
    }
    return {best};
  };
}

core::MlaOptions tuned_options(std::size_t eps, std::uint64_t seed) {
  core::MlaOptions opt;
  opt.budget_per_task = eps;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 20;
  opt.refit_period = eps > 40 ? 5 : 2;
  opt.log_objective = true;
  opt.seed = seed;
  return opt;
}

}  // namespace

int main() {
  using namespace gptune::bench;

  // ---------------- PDGEQRF (64 nodes / 2048 cores) ----------------
  section("Table 3 (upper) + Fig. 5 (left): PDGEQRF, 64 nodes, budget "
          "delta*eps = 100");

  apps::MachineConfig big_machine;
  big_machine.nodes = 64;
  apps::PdgeqrfSim qr(big_machine);

  // The shared expensive task plus 9 random cheaper ones. The paper draws
  // m, n < 40000 and notes the random tasks are "less expensive" than
  // (23324, 26545); we cap the draw below the shared task's size so that
  // property holds deterministically (see EXPERIMENTS.md).
  std::vector<core::TaskVector> qr_tasks = {{23324, 26545}};
  common::Rng task_rng(11);
  for (int i = 0; i < 9; ++i) {
    qr_tasks.push_back({std::floor(task_rng.uniform(2000, 23000)),
                        std::floor(task_rng.uniform(2000, 23000))});
  }

  // Single-task: all 100 evaluations on the big task.
  double single_app_seconds = 0.0;
  {
    auto objective = counting_objective(
        [&qr](const core::TaskVector& t, const core::Config& x,
              std::uint64_t trial) { return qr.runtime(t, x, trial); },
        3, &single_app_seconds);
    core::MultitaskTuner tuner(qr.tuning_space(), objective,
                               tuned_options(100, 21));
    auto result = tuner.run({qr_tasks[0]});
    const double best = result.tasks[0].best();
    const double tflops =
        apps::PdgeqrfSim::qr_flops(qr_tasks[0][0], qr_tasks[0][1]) / best /
        1e12;
    row("%-12s total_app=%9.1fs modeling=%6.2fs search=%6.2fs | "
        "task0 best=%7.3fs (%.2f TFLOPS)",
        "Single-task", single_app_seconds, result.times.modeling,
        result.times.search, best, tflops);

    // Multitask: 10 tasks x 10 evaluations.
    double multi_app_seconds = 0.0;
    auto mobjective = counting_objective(
        [&qr](const core::TaskVector& t, const core::Config& x,
              std::uint64_t trial) { return qr.runtime(t, x, trial); },
        3, &multi_app_seconds);
    // delta=10 x eps=10 is cheap tuner-side; spend more modeling/search
    // effort per sample (refit every iteration, more restarts) as the
    // paper's configuration does.
    core::MlaOptions multi_opt = tuned_options(10, 22);
    multi_opt.model_restarts = 3;
    multi_opt.refit_period = 1;
    multi_opt.pso.iterations = 100;
    core::MultitaskTuner mtuner(qr.tuning_space(), mobjective, multi_opt);
    auto mresult = mtuner.run(qr_tasks);
    const double mbest = mresult.tasks[0].best();
    row("%-12s total_app=%9.1fs modeling=%6.2fs search=%6.2fs | "
        "task0 best=%7.3fs (%.2f TFLOPS)",
        "Multitask", multi_app_seconds, mresult.times.modeling,
        mresult.times.search, mbest,
        apps::PdgeqrfSim::qr_flops(qr_tasks[0][0], qr_tasks[0][1]) / mbest /
            1e12);

    shape_check(multi_app_seconds < single_app_seconds,
                "PDGEQRF: multitask spends less application time (it mixes "
                "in 9 cheaper tasks)");
    shape_check(mbest < 1.35 * best,
                "PDGEQRF: multitask minimum on the shared task is similar "
                "to single-task (paper: 'very similar minimum')");

    // Fig. 5 left: per-task best & worst, sorted by flop count.
    row("\nFig. 5 (left): multitask per-task best/worst runtime, sorted by "
        "flops");
    std::vector<std::size_t> order(qr_tasks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return apps::PdgeqrfSim::qr_flops(qr_tasks[a][0], qr_tasks[a][1]) <
             apps::PdgeqrfSim::qr_flops(qr_tasks[b][0], qr_tasks[b][1]);
    });
    row("%18s %12s %10s %10s", "task (m x n)", "flops", "best(s)",
        "worst(s)");
    std::size_t monotone_pairs = 0;
    double prev_best = 0.0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const auto i = order[k];
      const double flops =
          apps::PdgeqrfSim::qr_flops(qr_tasks[i][0], qr_tasks[i][1]);
      const double best_i = mresult.tasks[i].best();
      row("%8.0f x %-8.0f %12.3e %10.3f %10.3f", qr_tasks[i][0],
          qr_tasks[i][1], flops, best_i, mresult.tasks[i].worst());
      if (k > 0 && best_i >= prev_best) ++monotone_pairs;
      prev_best = best_i;
    }
    shape_check(monotone_pairs >= 6,
                "PDGEQRF: best runtime mostly increases with task flops");
  }

  // ---------------- PDSYEVX (1 node) ----------------
  section("Table 3 + Fig. 5 (right): PDSYEVX, 1 node");
  apps::MachineConfig one_node;
  apps::PdsyevxSim evx(one_node);

  // Single-task m = 7000 with eps in {90, 180}: best of the random half
  // vs best after Bayesian optimization.
  double single_evx_best = 0.0;
  for (std::size_t eps : {90, 180}) {
    double app_seconds = 0.0;
    auto objective = counting_objective(
        [&evx](const core::TaskVector& t, const core::Config& x,
               std::uint64_t trial) { return evx.runtime(t, x, trial); },
        3, &app_seconds);
    core::MultitaskTuner tuner(evx.tuning_space(), objective,
                               tuned_options(eps, 30 + eps));
    auto result = tuner.run({{7000}});
    const auto curve = result.tasks[0].best_so_far();
    const double best_initial = curve[eps / 2 - 1];
    const double best_final = curve.back();
    row("Single-task m=7000 eps=%3zu: best after eps/2 samples %7.3fs, "
        "after all %7.3fs | total_app=%9.1fs modeling=%5.2fs search=%5.2fs",
        eps, best_initial, best_final, app_seconds, result.times.modeling,
        result.times.search);
    shape_check(best_final <= best_initial,
                "PDSYEVX eps=" + std::to_string(eps) +
                    ": BO half improves on the random half");
    single_evx_best = best_final;
  }

  // Multitask delta = 9, m = 3000..7000.
  std::vector<core::TaskVector> evx_tasks;
  for (int m = 3000; m <= 7000; m += 500) {
    evx_tasks.push_back({static_cast<double>(m)});
  }
  for (std::size_t eps : {10, 20}) {
    double app_seconds = 0.0;
    auto objective = counting_objective(
        [&evx](const core::TaskVector& t, const core::Config& x,
               std::uint64_t trial) { return evx.runtime(t, x, trial); },
        3, &app_seconds);
    core::MultitaskTuner tuner(evx.tuning_space(), objective,
                               tuned_options(eps, 40 + eps));
    auto result = tuner.run(evx_tasks);
    row("\nMultitask delta=9 eps=%zu: total_app=%9.1fs modeling=%5.2fs "
        "search=%5.2fs",
        eps, app_seconds, result.times.modeling, result.times.search);
    row("%8s %10s %10s", "m", "best(s)", "worst(s)");
    for (std::size_t i = 0; i < evx_tasks.size(); ++i) {
      row("%8.0f %10.3f %10.3f", evx_tasks[i][0], result.tasks[i].best(),
          result.tasks[i].worst());
    }
    // O(m^3) scaling of the best runtime.
    const double exponent =
        std::log(result.tasks.back().best() / result.tasks.front().best()) /
        std::log(7000.0 / 3000.0);
    row("fitted best-runtime exponent vs m: %.2f (theory 3)", exponent);
    shape_check(exponent > 2.0 && exponent < 4.0,
                "PDSYEVX eps=" + std::to_string(eps) +
                    ": best runtime scales ~O(m^3)");
    if (eps == 20) {
      shape_check(result.tasks.back().best() < 1.4 * single_evx_best,
                  "PDSYEVX: multitask m=7000 best similar to single-task");
    }
  }

  // ---------------- M3D_C1 and NIMROD (Table 3 lower) ----------------
  section("Table 3 (lower): M3D_C1 (t=3) and NIMROD (t=15), single vs "
          "multitask");

  {
    apps::M3dc1Sim m3d(one_node);
    double single_app = 0.0, multi_app = 0.0;
    auto sobj = counting_objective(
        [&m3d](const core::TaskVector& t, const core::Config& x,
               std::uint64_t trial) { return m3d.runtime(t, x, trial); },
        1, &single_app);
    core::MultitaskTuner stuner(m3d.tuning_space(), sobj,
                                tuned_options(80, 51));
    auto sres = stuner.run({{3}});

    auto mobj = counting_objective(
        [&m3d](const core::TaskVector& t, const core::Config& x,
               std::uint64_t trial) { return m3d.runtime(t, x, trial); },
        1, &multi_app);
    core::MultitaskTuner mtuner(m3d.tuning_space(), mobj,
                                tuned_options(20, 52));
    auto mres = mtuner.run({{1}, {1}, {1}, {3}});

    row("M3D_C1  %-12s minimum(t=3)=%8.3fs total_app=%9.1fs", "Single-task",
        sres.tasks[0].best(), single_app);
    row("M3D_C1  %-12s minimum(t=3)=%8.3fs total_app=%9.1fs", "Multitask",
        mres.tasks[3].best(), multi_app);
    shape_check(mres.tasks[3].best() < 1.15 * sres.tasks[0].best(),
                "M3D_C1: multitask minimum within ~15% of single-task");
    shape_check(multi_app < 0.8 * single_app,
                "M3D_C1: multitask total application time much smaller");

    // Improvement over a typical default configuration.
    const core::Config default_cfg = {1, 3, 16, 128, 20};
    const double default_time = m3d.runtime({3}, default_cfg, 0);
    row("M3D_C1  default config -> %8.3fs; tuned improvement %.0f%%",
        default_time,
        100.0 * (default_time - mres.tasks[3].best()) / default_time);
    shape_check(mres.tasks[3].best() < 0.95 * default_time,
                "M3D_C1: tuning improves over the default (paper: 15-20%)");
  }

  {
    apps::NimrodSim nimrod;  // 6 nodes
    double single_app = 0.0, multi_app = 0.0;
    auto sobj = counting_objective(
        [&nimrod](const core::TaskVector& t, const core::Config& x,
                  std::uint64_t trial) { return nimrod.runtime(t, x, trial); },
        1, &single_app);
    core::MultitaskTuner stuner(nimrod.tuning_space(), sobj,
                                tuned_options(80, 61));
    auto sres = stuner.run({{15}});

    auto mobj = counting_objective(
        [&nimrod](const core::TaskVector& t, const core::Config& x,
                  std::uint64_t trial) { return nimrod.runtime(t, x, trial); },
        1, &multi_app);
    core::MultitaskTuner mtuner(nimrod.tuning_space(), mobj,
                                tuned_options(20, 62));
    auto mres = mtuner.run({{3}, {3}, {3}, {15}});

    row("NIMROD  %-12s minimum(t=15)=%7.2fs total_app=%9.1fs", "Single-task",
        sres.tasks[0].best(), single_app);
    row("NIMROD  %-12s minimum(t=15)=%7.2fs total_app=%9.1fs", "Multitask",
        mres.tasks[3].best(), multi_app);
    shape_check(mres.tasks[3].best() < 1.15 * sres.tasks[0].best(),
                "NIMROD: multitask minimum within ~15% of single-task");
    shape_check(multi_app < 0.8 * single_app,
                "NIMROD: multitask total application time much smaller");
  }

  return finish("tab3_fig5_multitask");
}
