// Incremental LCM refit bench (DESIGN.md §3.10): replays the MLA modeling
// phase's growth schedule — append a batch of samples, refresh the
// posterior at cached hyperparameters — once with factor extension
// (O(N^2 k) per refresh) and once with full refactorization (O(N^3)),
// and reports the refit-phase speedup per final model size. The two paths
// must agree bitwise (the property the tier-1 tests pin down); here the
// claim is the *cost* separation, both measured and in exact flop counts.
//
// Emits BENCH_refit.json for the scripts/bench_gate.py regression gate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gp/incremental.hpp"
#include "gp/lcm.hpp"
#include "linalg/blocked_cholesky.hpp"

namespace {

using namespace gptune;

constexpr std::uint64_t kSeed = 20260808;
constexpr std::size_t kTasks = 2;
constexpr std::size_t kDim = 2;
constexpr std::size_t kAppendPerTask = 8;  // MLA batch_k-sized growth
constexpr int kReps = 5;                   // best-of-reps timing

gp::MultiTaskData random_data(std::size_t per_task, std::uint64_t seed) {
  common::Rng rng(seed);
  gp::MultiTaskData data;
  for (std::size_t i = 0; i < kTasks; ++i) {
    gp::Matrix x(per_task, kDim);
    gp::Vector y(per_task);
    for (std::size_t j = 0; j < per_task; ++j) {
      for (std::size_t m = 0; m < kDim; ++m) x(j, m) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  return data;
}

void append_batch(gp::MultiTaskData& data, common::Rng& rng) {
  for (std::size_t i = 0; i < kTasks; ++i) {
    const std::size_t old = data.x[i].rows();
    gp::Matrix grown(old + kAppendPerTask, kDim);
    for (std::size_t j = 0; j < old; ++j) {
      for (std::size_t m = 0; m < kDim; ++m) grown(j, m) = data.x[i](j, m);
    }
    for (std::size_t j = old; j < old + kAppendPerTask; ++j) {
      for (std::size_t m = 0; m < kDim; ++m) grown(j, m) = rng.uniform();
      data.y[i].push_back(rng.normal());
    }
    data.x[i] = std::move(grown);
  }
}

std::vector<double> fixed_theta(const gp::LcmShape& shape) {
  common::Rng rng(kSeed + 7);
  std::vector<double> theta(shape.num_hyperparameters());
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    for (std::size_t m = 0; m < shape.dim; ++m) {
      theta[shape.idx_log_l(q, m)] = std::log(rng.uniform(0.3, 1.0));
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      theta[shape.idx_a(q, i)] = rng.normal(0.0, 0.7);
      theta[shape.idx_log_b(q, i)] = std::log(0.05);
    }
  }
  for (std::size_t i = 0; i < shape.num_tasks; ++i) {
    theta[shape.idx_log_d(i)] = std::log(1e-3);
  }
  return theta;
}

struct ScheduleResult {
  double refresh_seconds = 0.0;  // sum over the whole growth schedule
  double final_lml = 0.0;
  std::size_t extends = 0;
  std::size_t rebuilds = 0;
};

// Replays the growth schedule start -> n_total, timing only the refresh
// calls (the refit phase of the MLA loop).
ScheduleResult run_schedule(std::size_t n_total, bool allow_extend) {
  const gp::LcmShape shape{2, kDim, kTasks};
  const auto theta = fixed_theta(shape);
  const std::size_t start_per_task = n_total / (2 * kTasks);

  ScheduleResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    gp::MultiTaskData data = random_data(start_per_task, kSeed);
    common::Rng growth(kSeed + 1);  // same appended samples every rep/path
    gp::IncrementalFitState state;
    double total = 0.0;
    double lml = 0.0;
    while (true) {
      common::Timer t;
      auto model = state.refresh(data, shape, theta,
                                 linalg::serial_runner(), allow_extend);
      total += t.seconds();
      if (!model) {
        std::fprintf(stderr, "refresh failed at %zu rows\n",
                     data.total_samples());
        std::exit(1);
      }
      lml = model->log_likelihood();
      if (data.total_samples() >= n_total) break;
      append_batch(data, growth);
    }
    if (rep == 0 || total < best.refresh_seconds) {
      best.refresh_seconds = total;
      best.final_lml = lml;
      best.extends = state.stats().extends;
      best.rebuilds = state.stats().rebuilds;
    }
  }
  return best;
}

// Exact flop-count speedup of the same schedule's factorizations — the
// deterministic counterpart of the measured ratio (stable across hosts,
// which is what the bench gate wants to track).
double flops_speedup(std::size_t n_total) {
  const std::size_t start = (n_total / (2 * kTasks)) * kTasks;
  const std::size_t batch = kAppendPerTask * kTasks;
  double rebuild = linalg::cholesky_flops(start);
  double extend = linalg::cholesky_flops(start);  // first refresh factors
  for (std::size_t n = start + batch; n <= n_total; n += batch) {
    rebuild += linalg::cholesky_flops(n);
    extend += linalg::cholesky_extend_flops(n - batch, n);
  }
  return rebuild / extend;
}

}  // namespace

int main() {
  using bench::row;
  using bench::section;
  using bench::shape_check;

  bench::BenchJson bench_json("BENCH_refit.json");

  section("Incremental refit: growth schedule refresh cost (2 tasks)");
  row("%8s %10s %12s %12s %10s %12s", "N", "rounds", "extend(s)",
      "rebuild(s)", "speedup", "flops-ratio");

  for (std::size_t n_total : {128u, 256u, 384u, 512u}) {
    const ScheduleResult ext = run_schedule(n_total, true);
    const ScheduleResult reb = run_schedule(n_total, false);
    const double speedup = reb.refresh_seconds / ext.refresh_seconds;
    const double fratio = flops_speedup(n_total);
    row("%8zu %10zu %12.4f %12.4f %9.2fx %11.2fx", n_total,
        ext.extends + ext.rebuilds, ext.refresh_seconds, reb.refresh_seconds,
        speedup, fratio);

    const std::string suffix = "_n" + std::to_string(n_total);
    bench_json.record("refit_extend_seconds" + suffix, ext.refresh_seconds,
                      1, kSeed);
    bench_json.record("refit_rebuild_seconds" + suffix, reb.refresh_seconds,
                      1, kSeed);
    bench_json.record("refit_speedup" + suffix, speedup, 1, kSeed);
    bench_json.record("refit_flops_speedup" + suffix, fratio, 1, kSeed);

    // The paths must agree bitwise — same trajectory guarantee the tier-1
    // tests assert; checked here on the bench sizes too.
    shape_check(ext.final_lml == reb.final_lml,
                "extend and rebuild agree bitwise at N=" +
                    std::to_string(n_total));
    shape_check(ext.extends == ext.extends + ext.rebuilds - 1,
                "every post-initial refresh extends at N=" +
                    std::to_string(n_total));
    if (n_total >= 256) {
      shape_check(speedup >= 3.0,
                  "refit-phase speedup >= 3x at N=" +
                      std::to_string(n_total) + " (got " +
                      std::to_string(speedup) + "x)");
    }
  }

  return bench::finish("bench_incremental_refit");
}
