// gptune_lint — determinism + concurrency-discipline lint for the GPTune
// C++ tree.
//
// The tuner's core guarantee (DESIGN.md §3.4–3.5) is that a trajectory is
// bitwise-reproducible from its seed at any worker count. That property is
// easy to destroy with one careless line — an ambient-entropy RNG, a raw
// std::thread racing the runtime's deterministic scheduling, an iteration
// over an unordered container feeding the search, an unguarded HistoryDb
// field read racing a worker's add() — and none of those are compile
// errors. This linter bans them mechanically.
//
// It is a from-scratch analyzer (no libclang) in two stages. A full-content
// lexer splits every translation unit into per-line code text (string/char
// literals blanked, raw strings and backslash line continuations handled)
// and comment text (for `gptune-lint:` directives). Per-line rules match on
// the code text; cross-file rules (the include-layering DAG, include-cycle
// detection, and guarded-type name collection for the lock-discipline rule)
// run over the whole file set handed to lint_sources()/lint_paths().
//
// `// gptune-lint: allow(<rule>) reason: <why>` on the same or the
// immediately preceding line suppresses a finding; the suppression-audit
// rule rejects any allow() directive that does not carry a reason. See
// DESIGN.md §3.6 and §3.11 for the rule catalog.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gptune::lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::string excerpt;  ///< the offending source line, trimmed
};

/// Aggregate result of a lint run (one or many files).
struct Result {
  std::vector<Finding> findings;    ///< unsuppressed, in file/line order
  std::size_t suppressed = 0;       ///< findings silenced by allow(...)
  std::size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  std::string name;
  std::string summary;
};

/// One in-memory translation unit for lint_sources(). `path` is used for
/// reporting and for path-scoped rules, so tests can mock tree locations.
struct SourceFile {
  std::string path;
  std::string content;
};

/// The rule catalog, in reporting order.
const std::vector<RuleInfo>& rules();

/// Lints one translation unit given as a string. `path` is used for
/// reporting and for path-scoped rules (raw-thread is allowed under
/// src/runtime/; lock-discipline field access is allowed in each guarded
/// type's home files). Returns unsuppressed findings; `suppressed`, when
/// non-null, is incremented for each allow()-silenced finding. Cross-file
/// rules see only this one file.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed = nullptr);

/// Lints a set of in-memory files together: per-line rules plus the
/// cross-file passes (guarded-type names are collected across the whole
/// set before the lock-discipline rule runs; the include graph is checked
/// for cycles among the given files).
Result lint_sources(const std::vector<SourceFile>& files);

/// Lints files and directories (recursed for C++ sources, deterministic
/// sorted order; directories named `lint_fixtures` are skipped — they hold
/// deliberate rule violations for the lint test corpus). Nonexistent or
/// unreadable paths land in Result::errors.
Result lint_paths(const std::vector<std::string>& paths);

/// Machine-readable summary of a run (stable key order).
std::string to_json(const Result& result);

}  // namespace gptune::lint
