// gptune_lint — determinism lint for the GPTune C++ tree.
//
// The tuner's core guarantee (DESIGN.md §3.4–3.5) is that a trajectory is
// bitwise-reproducible from its seed at any worker count. That property is
// easy to destroy with one careless line — an ambient-entropy RNG, a raw
// std::thread racing the runtime's deterministic scheduling, an iteration
// over an unordered container feeding the search — and none of those are
// compile errors. This linter bans them mechanically.
//
// It is a from-scratch line-oriented scanner (no libclang): comments and
// string/char literals are stripped with a small lexer, rules match on the
// remaining code text, and `// gptune-lint: allow(<rule>)` on the same or
// the immediately preceding line suppresses a finding. See DESIGN.md §3.6
// for the rule catalog.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gptune::lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string rule;
  std::string file;
  std::size_t line = 0;
  std::string message;
  std::string excerpt;  ///< the offending source line, trimmed
};

/// Aggregate result of a lint run (one or many files).
struct Result {
  std::vector<Finding> findings;    ///< unsuppressed, in file/line order
  std::size_t suppressed = 0;       ///< findings silenced by allow(...)
  std::size_t files_scanned = 0;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleInfo {
  std::string name;
  std::string summary;
};

/// The rule catalog, in reporting order.
const std::vector<RuleInfo>& rules();

/// Lints one translation unit given as a string. `path` is used for
/// reporting and for path-scoped rules (raw-thread is allowed under
/// src/runtime/; history-direct is allowed in src/core/history.*).
/// Returns unsuppressed findings; `suppressed`, when non-null, is
/// incremented for each allow()-silenced finding.
std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed = nullptr);

/// Lints files and directories (recursed for C++ sources, deterministic
/// sorted order). Nonexistent/unreadable paths land in Result::errors.
Result lint_paths(const std::vector<std::string>& paths);

/// Machine-readable summary of a run (stable key order).
std::string to_json(const Result& result);

}  // namespace gptune::lint
