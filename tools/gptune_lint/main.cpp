// gptune_lint CLI — scans C++ sources for determinism/runtime-misuse bans.
//
//   gptune_lint [--json] [--list-rules] <path>...
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
// scripts/check.sh (lint lane) and the lint_tree ctest target run this over
// src/, tests/ and tools/ and require a clean tree.
#include <cstdio>
#include <string>
#include <vector>

#include "linter.hpp"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: gptune_lint [--json] [--list-rules] <path>...\n"
               "  --json        machine-readable findings summary on stdout\n"
               "  --list-rules  print the rule catalog and exit\n"
               "Suppress one finding with '// gptune-lint: allow(<rule>)' on\n"
               "the same or the preceding line.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : gptune::lint::rules()) {
        std::printf("%-16s %s\n", r.name.c_str(), r.summary.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "gptune_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage();
    return 2;
  }

  const gptune::lint::Result result = gptune::lint::lint_paths(paths);

  if (json) {
    std::fputs(gptune::lint::to_json(result).c_str(), stdout);
  } else {
    for (const auto& f : result.findings) {
      std::printf("%s:%zu: [%s] %s\n    %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
    }
    std::printf(
        "gptune_lint: %zu finding(s), %zu suppressed, %zu file(s) scanned\n",
        result.findings.size(), result.suppressed, result.files_scanned);
  }
  for (const auto& e : result.errors) {
    std::fprintf(stderr, "gptune_lint: error: %s\n", e.c_str());
  }
  if (!result.errors.empty()) return 2;
  return result.findings.empty() ? 0 : 1;
}
