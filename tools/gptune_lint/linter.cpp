#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace gptune::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexing: split each physical line into code text (strings/chars blanked,
// comments removed) and comment text (for allow() directives). Block
// comments and raw string literals carry state across lines.

struct LexedLine {
  std::string code;     ///< literals blanked with spaces, comments removed
  std::string comment;  ///< concatenated comment text on this line
};

struct LexState {
  bool in_block_comment = false;
  bool in_raw_string = false;
  std::string raw_delim;  ///< the `)delim"` terminator we are scanning for
};

LexedLine lex_line(const std::string& line, LexState& st) {
  LexedLine out;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    if (st.in_block_comment) {
      std::size_t end = line.find("*/", i);
      if (end == std::string::npos) {
        out.comment += line.substr(i);
        return out;
      }
      out.comment += line.substr(i, end - i);
      st.in_block_comment = false;
      i = end + 2;
      continue;
    }
    if (st.in_raw_string) {
      std::size_t end = line.find(st.raw_delim, i);
      if (end == std::string::npos) {
        out.code.append(n - i, ' ');
        return out;
      }
      out.code.append(end + st.raw_delim.size() - i, ' ');
      st.in_raw_string = false;
      i = end + st.raw_delim.size();
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') {
      out.comment += line.substr(i + 2);
      return out;
    }
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      st.in_block_comment = true;
      i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && line[i + 1] == '"' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(line[i - 1])) &&
                    line[i - 1] != '_'))) {
      std::size_t open = line.find('(', i + 2);
      if (open != std::string::npos) {
        st.raw_delim = ")" + line.substr(i + 2, open - i - 2) + "\"";
        st.in_raw_string = true;
        out.code.append(open + 1 - i, ' ');
        i = open + 1;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.code += ' ';
      ++i;
      while (i < n) {
        if (line[i] == '\\' && i + 1 < n) {
          out.code += "  ";
          i += 2;
          continue;
        }
        out.code += ' ';
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out.code += c;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Helpers

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// Parses `gptune-lint: allow(rule-a, rule-b)` directives out of one line's
/// comment text. Returns the allowed rule names ("all" wildcards).
std::set<std::string> parse_allows(const std::string& comment) {
  std::set<std::string> allowed;
  static const std::regex kDirective(
      "gptune-lint:\\s*allow\\(([^)]*)\\)");
  auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                    kDirective);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string list = (*it)[1].str();
    std::string name;
    std::istringstream is(list);
    while (std::getline(is, name, ',')) {
      name = trim(name);
      if (!name.empty()) allowed.insert(name);
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// unordered-iter support: per-file tracking of names declared with unordered
// container types (including local `using` aliases). A purely lexical
// heuristic — file-scoped, no nesting — which is exactly as much as the
// repo's style needs; DESIGN.md §3.6 documents the limits.

const char* const kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};

/// Position just past a balanced `<...>` starting at `open` (which must
/// index a '<'), or npos if unbalanced on this line.
std::size_t skip_template_args(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Reads the identifier declared after a type token ending at `pos`
/// (skipping cv/ref/pointer decorations). Empty if none.
std::string read_declared_name(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         (code[pos] == ' ' || code[pos] == '\t' || code[pos] == '&' ||
          code[pos] == '*')) {
    ++pos;
  }
  if (code.compare(pos, 6, "const ") == 0) return read_declared_name(code, pos + 6);
  std::size_t start = pos;
  while (pos < code.size() && is_ident_char(code[pos])) ++pos;
  if (pos == start) return "";
  std::string name = code.substr(start, pos - start);
  // `Alias::iterator` or `Alias(x)` casts are not declarations.
  if (pos < code.size() && code[pos] == ':') return "";
  static const std::set<std::string> kKeywords = {"const", "constexpr",
                                                  "static", "mutable",
                                                  "return", "new"};
  if (kKeywords.count(name)) return "";
  return name;
}

/// All positions where `token` occurs as a whole identifier in `code`.
std::vector<std::size_t> find_tokens(const std::string& code,
                                     const std::string& token) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = end;
  }
  return out;
}

struct UnorderedNames {
  std::set<std::string> aliases;  ///< `using X = std::unordered_map<...>`
  std::set<std::string> vars;     ///< variables/members/params so typed
};

void collect_unordered_names(const std::vector<LexedLine>& lines,
                             UnorderedNames* names) {
  static const std::regex kUsingAlias(
      "\\busing\\s+([A-Za-z_]\\w*)\\s*=[^;]*\\bunordered_(map|set|multimap|"
      "multiset)\\b");
  static const std::regex kTypedef(
      "\\btypedef\\b[^;]*\\bunordered_(map|set|multimap|multiset)\\b[^;]*[\\s"
      "&*]([A-Za-z_]\\w*)\\s*;");
  for (const LexedLine& ln : lines) {
    std::smatch m;
    if (std::regex_search(ln.code, m, kUsingAlias)) {
      names->aliases.insert(m[1].str());
    }
    if (std::regex_search(ln.code, m, kTypedef)) {
      names->aliases.insert(m[2].str());
    }
  }
  for (const LexedLine& ln : lines) {
    for (const char* type : kUnorderedTypes) {
      for (std::size_t pos : find_tokens(ln.code, type)) {
        std::size_t after = pos + std::string(type).size();
        while (after < ln.code.size() &&
               (ln.code[after] == ' ' || ln.code[after] == '\t')) {
          ++after;
        }
        if (after >= ln.code.size() || ln.code[after] != '<') continue;
        std::size_t past = skip_template_args(ln.code, after);
        if (past == std::string::npos) continue;
        std::string name = read_declared_name(ln.code, past);
        if (!name.empty()) names->vars.insert(name);
      }
    }
    for (const std::string& alias : names->aliases) {
      for (std::size_t pos : find_tokens(ln.code, alias)) {
        std::string name = read_declared_name(ln.code, pos + alias.size());
        if (!name.empty()) names->vars.insert(name);
      }
    }
  }
}

/// Extracts the range expression of a range-for on this line, or "" if the
/// line holds none. (`for (decl : range)` — ':' found at paren depth 1,
/// not part of a `::`.)
std::string range_for_expr(const std::string& code) {
  for (std::size_t pos : find_tokens(code, "for")) {
    std::size_t open = code.find('(', pos + 3);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = i;
          break;
        }
      }
      if (c == ';') break;  // classic for-loop, not range-for
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
        if (!dbl) colon = i;
      }
    }
    if (colon != std::string::npos && close != std::string::npos) {
      return trim(code.substr(colon + 1, close - colon - 1));
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Rule catalog

struct Rule {
  std::string name;
  std::string summary;
  std::string message;
  std::regex pattern;
};

const std::vector<Rule>& pattern_rules() {
  static const std::vector<Rule> kRules = {
      {"random-device",
       "bans std::random_device (ambient entropy)",
       "std::random_device draws ambient entropy; seed a common/rng.hpp "
       "SplitMix64 stream from the experiment seed instead",
       std::regex("\\brandom_device\\b")},
      {"time-seed",
       "bans wall-clock time() as an RNG seed",
       "time()-derived values are nondeterministic; derive seeds from the "
       "experiment seed (common/rng.hpp)",
       std::regex("\\btime\\s*\\(\\s*(nullptr|NULL|0|&\\w+)\\s*\\)")},
      {"rand",
       "bans the C rand()/srand() generator",
       "rand()/srand() is a hidden global RNG; use a per-restart "
       "common/rng.hpp stream",
       std::regex("\\b(rand\\s*\\(\\s*\\)|srand\\s*\\()")},
      {"raw-thread",
       "bans std::thread/std::async outside src/runtime/",
       "raw std::thread/std::async bypasses the deterministic runtime; use "
       "rt::World/Comm::spawn or rt::ThreadPool (src/runtime/)",
       std::regex("\\bstd\\s*::\\s*(thread\\b|async\\s*\\()")},
      {"history-direct",
       "bans HistoryDb .records() access outside src/core/history.*",
       "records() hands out the store without the HistoryDb mutex; use the "
       "guarded query API, or annotate a deliberate snapshot read",
       std::regex("(\\.|->)\\s*records\\s*\\(\\s*\\)")},
      {"wall-clock",
       "bans steady_clock/system_clock ::now() outside common/timer.hpp, "
       "common/telemetry/ and src/runtime/",
       "direct wall-clock reads leak nondeterminism into tuner code; use "
       "common::Timer for measurement or the telemetry layer for tracing "
       "(both are observe-only by contract)",
       std::regex("\\b(steady_clock|system_clock)\\s*::\\s*now\\s*\\(")},
      {"full-refactor",
       "bans direct full Cholesky refactorization in the GP/tuner refit "
       "path (src/gp/, src/core/)",
       "a from-scratch blocked_cholesky/CholeskyFactor::factor in the refit "
       "path rebuilds the whole O(N^3) factor every iteration; route "
       "posterior refreshes through gp::IncrementalFitState (or "
       "blocked_cholesky_extend), or annotate a deliberate cold-path "
       "refactorization",
       std::regex("\\b(blocked_cholesky|CholeskyFactor\\s*::\\s*"
                  "factor(_with_jitter)?)\\s*\\(")},
      {"arrival-recv",
       "bans wildcard (arrival-order) recv() outside src/runtime/ and "
       "core/completion_log",
       "a wildcard recv delivers in host-scheduling arrival order, which "
       "leaks nondeterminism into completion handling; pin the source "
       "(recv(rank)) or route the receive through core::CompletionDelivery "
       "(core/completion_log.hpp), the recorded/replayable delivery policy",
       std::regex("(\\.|->)\\s*recv\\s*\\(\\s*(\\)|(rt\\s*::\\s*)?"
                  "kAnySource\\b)")},
  };
  return kRules;
}

bool rule_applies(const std::string& rule, const std::string& path) {
  if (rule == "raw-thread") {
    return path.find("src/runtime/") == std::string::npos;
  }
  if (rule == "history-direct") {
    return path.find("src/core/history.") == std::string::npos;
  }
  if (rule == "wall-clock") {
    // The sanctioned wall-clock consumers: the timer wrapper, the telemetry
    // layer, and the runtime (timeouts/deadlines on mailbox waits).
    return path.find("src/common/timer.hpp") == std::string::npos &&
           path.find("src/common/telemetry/") == std::string::npos &&
           path.find("src/runtime/") == std::string::npos;
  }
  if (rule == "full-refactor") {
    // Only the refit hot path is policed: the GP stack and the tuner core.
    // linalg/ implements the factorizations, and tests/tools/bench compare
    // against the full refactorization on purpose.
    return path.find("src/gp/") != std::string::npos ||
           path.find("src/core/") != std::string::npos;
  }
  if (rule == "arrival-recv") {
    // Completion ordering is only allowed to be arrival-dependent inside
    // the runtime itself and in the replay-deterministic delivery policy
    // (core/completion_log). Only src/ is policed: tests and tools
    // exercise the runtime primitives directly.
    return path.find("src/") != std::string::npos &&
           path.find("src/runtime/") == std::string::npos &&
           path.find("src/core/completion_log") == std::string::npos;
  }
  return true;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

bool is_cpp_source(const std::filesystem::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx", ".hpp",
                                              ".h",   ".hh", ".inl"};
  return kExts.count(p.extension().string()) > 0;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kInfos = [] {
    std::vector<RuleInfo> out;
    for (const Rule& r : pattern_rules()) out.push_back({r.name, r.summary});
    out.push_back(
        {"unordered-iter",
         "bans range-for over unordered containers (iteration order feeds "
         "the trajectory)"});
    return out;
  }();
  return kInfos;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed) {
  const std::string npath = normalize(path);

  // Lex every line once.
  std::vector<LexedLine> lines;
  {
    LexState st;
    std::istringstream is(content);
    std::string raw;
    while (std::getline(is, raw)) lines.push_back(lex_line(raw, st));
  }
  std::vector<std::string> raw_lines;
  {
    std::istringstream is(content);
    std::string raw;
    while (std::getline(is, raw)) raw_lines.push_back(raw);
  }

  // allow() directives, by 0-based line.
  std::vector<std::set<std::string>> allows(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    allows[i] = parse_allows(lines[i].comment);
  }
  auto allowed = [&](std::size_t line0, const std::string& rule) {
    for (std::size_t l : {line0, line0 == 0 ? line0 : line0 - 1}) {
      if (allows[l].count(rule) || allows[l].count("all")) return true;
    }
    return false;
  };

  std::vector<Finding> findings;
  auto emit = [&](std::size_t line0, const std::string& rule,
                  const std::string& message) {
    if (allowed(line0, rule)) {
      if (suppressed != nullptr) ++*suppressed;
      return;
    }
    findings.push_back(
        {rule, path, line0 + 1, message, trim(raw_lines[line0])});
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Rule& r : pattern_rules()) {
      if (!rule_applies(r.name, npath)) continue;
      if (std::regex_search(lines[i].code, r.pattern)) {
        emit(i, r.name, r.message);
      }
    }
  }

  UnorderedNames names;
  collect_unordered_names(lines, &names);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string expr = range_for_expr(lines[i].code);
    if (expr.empty()) continue;
    const bool direct = expr.find("unordered_") != std::string::npos;
    const bool tracked =
        std::all_of(expr.begin(), expr.end(), is_ident_char) &&
        names.vars.count(expr) > 0;
    if (direct || tracked) {
      emit(i, "unordered-iter",
           "iterating an unordered container ('" + expr +
               "') feeds hash order into the trajectory; use an ordered "
               "container or sort first");
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

Result lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  Result result;

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry :
           fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      if (ec) result.errors.push_back(p + ": " + ec.message());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      result.errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.errors.push_back(file + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    ++result.files_scanned;
    std::vector<Finding> f =
        lint_source(file, buf.str(), &result.suppressed);
    result.findings.insert(result.findings.end(), f.begin(), f.end());
  }
  return result;
}

std::string to_json(const Result& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"suppressed\": " << result.suppressed
     << ",\n  \"counts\": {";
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : result.findings) ++counts[f.rule];
  bool first = true;
  for (const auto& [rule, n] : counts) {
    os << (first ? "" : ", ");
    json_escape(os, rule);
    os << ": " << n;
    first = false;
  }
  os << "},\n  \"findings\": [";
  first = true;
  for (const Finding& f : result.findings) {
    os << (first ? "\n" : ",\n") << "    {\"rule\": ";
    json_escape(os, f.rule);
    os << ", \"file\": ";
    json_escape(os, f.file);
    os << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(os, f.message);
    os << ", \"excerpt\": ";
    json_escape(os, f.excerpt);
    os << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"errors\": [";
  first = true;
  for (const std::string& e : result.errors) {
    os << (first ? "" : ", ");
    json_escape(os, e);
    first = false;
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace gptune::lint
