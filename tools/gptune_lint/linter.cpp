#include "linter.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace gptune::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexing. The whole translation unit is scanned as one character stream so
// that constructs spanning physical lines — block comments, raw string
// literals, backslash-newline splices — carry state correctly. The output
// is one LexedLine per *physical* line: `code` holds the line's code text
// with string/char literal contents blanked to spaces, `comment` holds the
// line's comment text (where allow() directives live). Spliced logical
// lines accumulate onto the physical line where they start; the
// continuation lines lex as empty.

struct LexedLine {
  std::string code;     ///< literals blanked with spaces, comments removed
  std::string comment;  ///< concatenated comment text on this line
};

struct LexedFile {
  std::vector<LexedLine> lines;
  std::vector<std::string> raw;  ///< physical lines, for excerpts/includes
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

LexedFile lex(const std::string& content) {
  LexedFile out;

  // Physical lines (split on '\n', CR stripped). A trailing newline yields
  // a final empty line; the lexer below produces the same count.
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= content.size(); ++i) {
      if (i == content.size() || content[i] == '\n') {
        std::string line = content.substr(start, i - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        out.raw.push_back(std::move(line));
        start = i + 1;
        if (i == content.size()) break;
      }
    }
  }

  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar,
                    kRawString };
  Mode mode = Mode::kCode;
  std::string raw_end;  ///< `)delim"` closing the current raw string

  out.lines.emplace_back();
  std::size_t target = 0;  ///< line receiving lexed text (logical start)
  auto code = [&]() -> std::string& { return out.lines[target].code; };
  auto comment = [&]() -> std::string& { return out.lines[target].comment; };

  const std::size_t n = content.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = content[i];
    if (c == '\r') {  // CRLF: fold into the '\n' that follows
      ++i;
      continue;
    }
    // Backslash-newline splice (translation phase 2): the logical line
    // continues, the physical line advances. Not inside raw strings, where
    // the backslash is literal.
    if (c == '\\' && mode != Mode::kRawString) {
      std::size_t j = i + 1;
      if (j < n && content[j] == '\r') ++j;
      if (j < n && content[j] == '\n') {
        out.lines.emplace_back();  // continuation physical line lexes empty
        i = j + 1;
        continue;
      }
    }
    if (c == '\n') {
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      // An unterminated plain string/char literal cannot span lines in
      // C++; recover instead of desyncing the rest of the file.
      if (mode == Mode::kString || mode == Mode::kChar) mode = Mode::kCode;
      out.lines.emplace_back();
      target = out.lines.size() - 1;
      ++i;
      continue;
    }
    switch (mode) {
      case Mode::kCode: {
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          mode = Mode::kLineComment;
          i += 2;
          continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          mode = Mode::kBlockComment;
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string literal? The already-lexed code text ends with the
          // encoding prefix as a standalone token.
          std::string& cd = code();
          std::size_t e = cd.size();
          while (e > 0 && is_ident_char(cd[e - 1])) --e;
          const std::string tail = cd.substr(e);
          static const std::set<std::string> kRawPrefixes = {"R", "u8R",
                                                             "uR", "UR",
                                                             "LR"};
          if (kRawPrefixes.count(tail) > 0) {
            std::size_t open = i + 1;
            while (open < n && open - (i + 1) <= 16 &&
                   content[open] != '(' && content[open] != '\n' &&
                   content[open] != ')' && content[open] != '\\') {
              ++open;
            }
            if (open < n && content[open] == '(') {
              raw_end = ")" + content.substr(i + 1, open - i - 1) + "\"";
              mode = Mode::kRawString;
              cd.append(open + 1 - i, ' ');
              i = open + 1;
              continue;
            }
          }
          mode = Mode::kString;
          cd += ' ';
          ++i;
          continue;
        }
        if (c == '\'') {
          // Digit separator (1'000'000, 0xFF'FF) vs char literal: a quote
          // continuing a token that starts with a digit is a separator.
          std::string& cd = code();
          std::size_t e = cd.size();
          while (e > 0 && is_ident_char(cd[e - 1])) --e;
          const bool separator =
              e < cd.size() && std::isdigit(static_cast<unsigned char>(cd[e]));
          if (separator) {
            cd += '\'';
            ++i;
            continue;
          }
          mode = Mode::kChar;
          cd += ' ';
          ++i;
          continue;
        }
        code() += c;
        ++i;
        continue;
      }
      case Mode::kLineComment:
        comment() += c;
        ++i;
        continue;
      case Mode::kBlockComment:
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          mode = Mode::kCode;
          i += 2;
          continue;
        }
        comment() += c;
        ++i;
        continue;
      case Mode::kString:
      case Mode::kChar:
        if (c == '\\') {  // escape; a splice was already handled above
          code() += "  ";
          i += 2;
          continue;
        }
        code() += ' ';
        if ((mode == Mode::kString && c == '"') ||
            (mode == Mode::kChar && c == '\'')) {
          mode = Mode::kCode;
        }
        ++i;
        continue;
      case Mode::kRawString:
        if (content.compare(i, raw_end.size(), raw_end) == 0) {
          code().append(raw_end.size(), ' ');
          mode = Mode::kCode;
          i += raw_end.size();
          continue;
        }
        code() += ' ';
        ++i;
        continue;
    }
  }

  // The splitter and the lexer count lines identically by construction.
  while (out.lines.size() < out.raw.size()) out.lines.emplace_back();
  while (out.lines.size() > out.raw.size()) out.lines.pop_back();
  return out;
}

// ---------------------------------------------------------------------------
// Helpers

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t");
  if (a == std::string::npos) return "";
  std::size_t b = s.find_last_not_of(" \t");
  return s.substr(a, b - a + 1);
}

std::string normalize(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

const std::regex& directive_regex() {
  static const std::regex kDirective("gptune-lint:\\s*allow\\(([^)]*)\\)");
  return kDirective;
}

/// Parses the `allow(rule-a, rule-b)` suppression directives out of one
/// line's comment text. Returns the allowed rule names ("all" wildcards).
std::set<std::string> parse_allows(const std::string& comment) {
  std::set<std::string> allowed;
  auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                    directive_regex());
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string list = (*it)[1].str();
    std::string name;
    std::istringstream is(list);
    while (std::getline(is, name, ',')) {
      name = trim(name);
      if (!name.empty()) allowed.insert(name);
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// Declared-name tracking, shared by unordered-iter and lock-discipline: a
// purely lexical, per-line heuristic (no nesting, no scopes) — exactly as
// much as the repo's style needs; DESIGN.md §3.6/§3.11 document the limits.

/// Position just past a balanced `<...>` starting at `open` (which must
/// index a '<'), or npos if unbalanced on this line.
std::size_t skip_template_args(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    if (code[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Reads the identifier declared after a type token ending at `pos`
/// (skipping cv/ref/pointer decorations). Empty if none.
std::string read_declared_name(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         (code[pos] == ' ' || code[pos] == '\t' || code[pos] == '&' ||
          code[pos] == '*')) {
    ++pos;
  }
  if (code.compare(pos, 6, "const ") == 0) return read_declared_name(code, pos + 6);
  std::size_t start = pos;
  while (pos < code.size() && is_ident_char(code[pos])) ++pos;
  if (pos == start) return "";
  std::string name = code.substr(start, pos - start);
  // `Alias::iterator` or `Alias(x)` casts are not declarations.
  if (pos < code.size() && code[pos] == ':') return "";
  static const std::set<std::string> kKeywords = {"const", "constexpr",
                                                  "static", "mutable",
                                                  "return", "new"};
  if (kKeywords.count(name)) return "";
  return name;
}

/// All positions where `token` occurs as a whole identifier in `code`.
std::vector<std::size_t> find_tokens(const std::string& code,
                                     const std::string& token) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// unordered-iter support

const char* const kUnorderedTypes[] = {"unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"};

struct UnorderedNames {
  std::set<std::string> aliases;  ///< `using X = std::unordered_map<...>`
  std::set<std::string> vars;     ///< variables/members/params so typed
};

void collect_unordered_names(const std::vector<LexedLine>& lines,
                             UnorderedNames* names) {
  static const std::regex kUsingAlias(
      "\\busing\\s+([A-Za-z_]\\w*)\\s*=[^;]*\\bunordered_(map|set|multimap|"
      "multiset)\\b");
  static const std::regex kTypedef(
      "\\btypedef\\b[^;]*\\bunordered_(map|set|multimap|multiset)\\b[^;]*[\\s"
      "&*]([A-Za-z_]\\w*)\\s*;");
  for (const LexedLine& ln : lines) {
    std::smatch m;
    if (std::regex_search(ln.code, m, kUsingAlias)) {
      names->aliases.insert(m[1].str());
    }
    if (std::regex_search(ln.code, m, kTypedef)) {
      names->aliases.insert(m[2].str());
    }
  }
  for (const LexedLine& ln : lines) {
    for (const char* type : kUnorderedTypes) {
      for (std::size_t pos : find_tokens(ln.code, type)) {
        std::size_t after = pos + std::string(type).size();
        while (after < ln.code.size() &&
               (ln.code[after] == ' ' || ln.code[after] == '\t')) {
          ++after;
        }
        if (after >= ln.code.size() || ln.code[after] != '<') continue;
        std::size_t past = skip_template_args(ln.code, after);
        if (past == std::string::npos) continue;
        std::string name = read_declared_name(ln.code, past);
        if (!name.empty()) names->vars.insert(name);
      }
    }
    for (const std::string& alias : names->aliases) {
      for (std::size_t pos : find_tokens(ln.code, alias)) {
        std::string name = read_declared_name(ln.code, pos + alias.size());
        if (!name.empty()) names->vars.insert(name);
      }
    }
  }
}

/// Extracts the range expression of a range-for on this line, or "" if the
/// line holds none. (`for (decl : range)` — ':' found at paren depth 1,
/// not part of a `::`.)
std::string range_for_expr(const std::string& code) {
  for (std::size_t pos : find_tokens(code, "for")) {
    std::size_t open = code.find('(', pos + 3);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') {
        --depth;
        if (depth == 0 && c == ')') {
          close = i;
          break;
        }
      }
      if (c == ';') break;  // classic for-loop, not range-for
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
        if (!dbl) colon = i;
      }
    }
    if (colon != std::string::npos && close != std::string::npos) {
      return trim(code.substr(colon + 1, close - colon - 1));
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// layering support: the include DAG. Layers are ranked; a file may include
// its own layer or any strictly lower rank. Equal-rank *different* layers
// (runtime vs opt, apps vs baselines) are siblings and must not include
// each other. Files outside src/, and angle-bracket includes, are exempt.

int layer_rank(const std::string& layer) {
  static const std::map<std::string, int> kRank = {
      {"common", 0},  {"linalg", 1}, {"opt", 2},  {"runtime", 2},
      {"gp", 3},      {"core", 4},   {"apps", 5}, {"baselines", 5}};
  auto it = kRank.find(layer);
  return it == kRank.end() ? -1 : it->second;
}

/// Layer of a tree file from its path (`.../src/<layer>/...`), or "" if it
/// is not under a recognized src/ layer.
std::string src_layer(const std::string& npath) {
  std::size_t at = std::string::npos;
  if (npath.rfind("src/", 0) == 0) {
    at = 4;
  } else {
    std::size_t p = npath.rfind("/src/");
    if (p != std::string::npos) at = p + 5;
  }
  if (at == std::string::npos) return "";
  std::size_t slash = npath.find('/', at);
  if (slash == std::string::npos) return "";
  std::string layer = npath.substr(at, slash - at);
  return layer_rank(layer) >= 0 ? layer : "";
}

/// Layer of a quoted include path (first component, src-relative by repo
/// convention), or "" if it does not name a known layer.
std::string include_layer(const std::string& inc) {
  const std::string p = normalize(inc);
  std::size_t slash = p.find('/');
  if (slash == std::string::npos) return "";
  std::string layer = p.substr(0, slash);
  return layer_rank(layer) >= 0 ? layer : "";
}

struct IncludeRef {
  std::size_t line0 = 0;  ///< 0-based line of the directive
  std::string path;       ///< the quoted include path, as written
};

std::vector<IncludeRef> quoted_includes(const LexedFile& lf) {
  // The quoted path is blanked in the code text (it is a string literal,
  // quotes included), so match the directive shape on code and pull the
  // path from raw. The code-side check rejects commented-out directives;
  // the raw-side capture rejects angle-bracket includes.
  static const std::regex kCodeInclude("^\\s*#\\s*include\\b");
  static const std::regex kRawInclude("^\\s*#\\s*include\\s*\"([^\"]+)\"");
  std::vector<IncludeRef> out;
  for (std::size_t i = 0; i < lf.lines.size(); ++i) {
    if (!std::regex_search(lf.lines[i].code, kCodeInclude)) continue;
    std::smatch m;
    if (std::regex_search(lf.raw[i], m, kRawInclude)) {
      out.push_back({i, m[1].str()});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// lock-discipline support: types whose fields are mutex-guarded. Member
// access on variables of these types is only legal through the
// guard-holding accessor API, except inside the type's home files (which
// implement the locking and are covered by the Clang thread-safety
// annotations, DESIGN.md §3.11).

struct GuardedType {
  const char* type;  ///< class name whose declarations are tracked
  std::vector<const char*> homes;  ///< path fragments with free access
  std::set<std::string> allowed;   ///< guard-holding members
};

const std::vector<GuardedType>& guarded_types() {
  static const std::vector<GuardedType> kTypes = {
      {"HistoryDb",
       {"src/core/history."},
       {"add", "size", "for_task", "best_for_task", "merge", "save",
        "load"}},
      // The telemetry metrics registry and the rtcheck registry: every
      // field is guarded by the registry mutex, and no access at all is
      // legal outside the owning translation units.
      {"Registry",
       {"src/common/telemetry/", "src/runtime/rtcheck."},
       {}},
  };
  return kTypes;
}

bool in_home(const GuardedType& gt, const std::string& npath) {
  for (const char* home : gt.homes) {
    if (npath.find(home) != std::string::npos) return true;
  }
  return false;
}

/// Per-type tracked variable names: guarded_names[type] = {names}.
using GuardedNames = std::map<std::string, std::set<std::string>>;

/// True if `name` is declared in this file with a type other than `type` —
/// a cross-file tracked name (say, MlaOptions::history, a HistoryDb*) is
/// dropped for files that reuse the identifier for something else (a
/// baseline's `TaskHistory& history`, an `auto history = ...` local).
/// Declarations are recognized lexically: an identifier token (skipping
/// cv words and ref/pointer decorations) immediately before the name.
bool shadowed_in_file(const LexedFile& lf, const std::string& name,
                      const std::string& type) {
  static const std::set<std::string> kNotTypes = {
      "return",  "co_return", "co_yield", "co_await", "throw", "delete",
      "new",     "typename",  "using",    "namespace", "goto", "case",
      "sizeof",  "decltype",  "else",     "do",        "if",   "while",
      "typedef", "struct",    "class",    "public",    "private",
      "protected"};
  for (const LexedLine& ln : lf.lines) {
    const std::string& code = ln.code;
    for (std::size_t pos : find_tokens(code, name)) {
      std::size_t p = pos;
      std::string prev;
      for (;;) {  // read identifiers backwards, skipping cv words
        while (p > 0 && (code[p - 1] == ' ' || code[p - 1] == '\t' ||
                         code[p - 1] == '&' || code[p - 1] == '*')) {
          --p;
        }
        std::size_t e = p;
        while (p > 0 && is_ident_char(code[p - 1])) --p;
        prev = code.substr(p, e - p);
        if (prev != "const" && prev != "volatile") break;
      }
      if (prev.empty() || prev == type) continue;
      if (kNotTypes.count(prev) > 0) continue;
      return true;
    }
  }
  return false;
}

/// Collects names declared with a guarded type in this file. Home files
/// are skipped (their locals — `Registry& r` — are implementation detail
/// and must not poison the cross-file set).
void collect_guarded_names(const std::string& npath, const LexedFile& lf,
                           GuardedNames* names) {
  for (const GuardedType& gt : guarded_types()) {
    if (in_home(gt, npath)) continue;
    for (const LexedLine& ln : lf.lines) {
      for (std::size_t pos : find_tokens(ln.code, gt.type)) {
        std::string name =
            read_declared_name(ln.code, pos + std::string(gt.type).size());
        if (!name.empty()) (*names)[gt.type].insert(name);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule catalog

struct Rule {
  std::string name;
  std::string summary;
  std::string message;
  std::regex pattern;
};

const std::vector<Rule>& pattern_rules() {
  static const std::vector<Rule> kRules = {
      {"random-device",
       "bans std::random_device (ambient entropy)",
       "std::random_device draws ambient entropy; seed a common/rng.hpp "
       "SplitMix64 stream from the experiment seed instead",
       std::regex("\\brandom_device\\b")},
      {"time-seed",
       "bans wall-clock time() as an RNG seed",
       "time()-derived values are nondeterministic; derive seeds from the "
       "experiment seed (common/rng.hpp)",
       std::regex("\\btime\\s*\\(\\s*(nullptr|NULL|0|&\\w+)\\s*\\)")},
      {"rand",
       "bans the C rand()/srand() generator",
       "rand()/srand() is a hidden global RNG; use a per-restart "
       "common/rng.hpp stream",
       std::regex("\\b(rand\\s*\\(\\s*\\)|srand\\s*\\()")},
      {"raw-thread",
       "bans std::thread/std::async outside src/runtime/",
       "raw std::thread/std::async bypasses the deterministic runtime; use "
       "rt::World/Comm::spawn or rt::ThreadPool (src/runtime/)",
       std::regex("\\bstd\\s*::\\s*(thread\\b|async\\s*\\()")},
      {"wall-clock",
       "bans steady_clock/system_clock ::now() outside common/timer.hpp, "
       "common/telemetry/ and src/runtime/",
       "direct wall-clock reads leak nondeterminism into tuner code; use "
       "common::Timer for measurement or the telemetry layer for tracing "
       "(both are observe-only by contract)",
       std::regex("\\b(steady_clock|system_clock)\\s*::\\s*now\\s*\\(")},
      {"full-refactor",
       "bans direct full Cholesky refactorization in the GP/tuner refit "
       "path (src/gp/, src/core/)",
       "a from-scratch blocked_cholesky/CholeskyFactor::factor in the refit "
       "path rebuilds the whole O(N^3) factor every iteration; route "
       "posterior refreshes through gp::IncrementalFitState (or "
       "blocked_cholesky_extend), or annotate a deliberate cold-path "
       "refactorization",
       std::regex("\\b(blocked_cholesky|CholeskyFactor\\s*::\\s*"
                  "factor(_with_jitter)?)\\s*\\(")},
      {"arrival-recv",
       "bans wildcard (arrival-order) recv() outside src/runtime/ and "
       "core/completion_log",
       "a wildcard recv delivers in host-scheduling arrival order, which "
       "leaks nondeterminism into completion handling; pin the source "
       "(recv(rank)) or route the receive through core::CompletionDelivery "
       "(core/completion_log.hpp), the recorded/replayable delivery policy",
       std::regex("(\\.|->)\\s*recv\\s*\\(\\s*(\\)|(rt\\s*::\\s*)?"
                  "kAnySource\\b)")},
  };
  return kRules;
}

bool rule_applies(const std::string& rule, const std::string& path) {
  if (rule == "raw-thread") {
    return path.find("src/runtime/") == std::string::npos;
  }
  if (rule == "wall-clock") {
    // The sanctioned wall-clock consumers: the timer wrapper, the telemetry
    // layer, and the runtime (timeouts/deadlines on mailbox waits).
    return path.find("src/common/timer.hpp") == std::string::npos &&
           path.find("src/common/telemetry/") == std::string::npos &&
           path.find("src/runtime/") == std::string::npos;
  }
  if (rule == "full-refactor") {
    // Only the refit hot path is policed: the GP stack and the tuner core.
    // linalg/ implements the factorizations, and tests/tools/bench compare
    // against the full refactorization on purpose.
    return path.find("src/gp/") != std::string::npos ||
           path.find("src/core/") != std::string::npos;
  }
  if (rule == "arrival-recv") {
    // Completion ordering is only allowed to be arrival-dependent inside
    // the runtime itself and in the replay-deterministic delivery policy
    // (core/completion_log). Only src/ is policed: tests and tools
    // exercise the runtime primitives directly.
    return path.find("src/") != std::string::npos &&
           path.find("src/runtime/") == std::string::npos &&
           path.find("src/core/completion_log") == std::string::npos;
  }
  if (rule == "lock-discipline") {
    // The blanket records() check; field-level scoping (per-type homes) is
    // handled in the rule body.
    return path.find("src/core/history.") == std::string::npos;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-file analysis

struct FileAnalysis {
  std::string path;   ///< as given, for reporting
  std::string npath;  ///< normalized, for path-scoped rules
  LexedFile lex;
  std::vector<std::set<std::string>> allows;  ///< per 0-based line
  std::vector<IncludeRef> includes;
};

FileAnalysis prepare(const std::string& path, const std::string& content) {
  FileAnalysis fa;
  fa.path = path;
  fa.npath = normalize(path);
  fa.lex = lex(content);
  fa.allows.resize(fa.lex.lines.size());
  for (std::size_t i = 0; i < fa.lex.lines.size(); ++i) {
    fa.allows[i] = parse_allows(fa.lex.lines[i].comment);
  }
  fa.includes = quoted_includes(fa.lex);
  return fa;
}

bool is_allowed(const FileAnalysis& fa, std::size_t line0,
                const std::string& rule) {
  auto match = [&](std::size_t l) {
    return fa.allows[l].count(rule) > 0 || fa.allows[l].count("all") > 0;
  };
  if (match(line0)) return true;
  // A directive reaches the next code line through a contiguous run of
  // comment-only lines (so a directive's `reason:` text may wrap), plus
  // the immediately preceding line even if it holds code.
  std::size_t l = line0;
  while (l > 0) {
    --l;
    if (match(l)) return true;
    const bool comment_only = trim(fa.lex.lines[l].code).empty() &&
                              !fa.lex.lines[l].comment.empty();
    if (!comment_only) break;
  }
  return false;
}

std::vector<Finding> analyze_file(const FileAnalysis& fa,
                                  const GuardedNames& cross_file_names,
                                  std::size_t* suppressed) {
  const std::vector<LexedLine>& lines = fa.lex.lines;
  std::vector<Finding> findings;
  auto emit = [&](std::size_t line0, const std::string& rule,
                  const std::string& message) {
    if (is_allowed(fa, line0, rule)) {
      if (suppressed != nullptr) ++*suppressed;
      return;
    }
    findings.push_back(
        {rule, fa.path, line0 + 1, message, trim(fa.lex.raw[line0])});
  };

  // Pattern rules.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Rule& r : pattern_rules()) {
      if (!rule_applies(r.name, fa.npath)) continue;
      if (std::regex_search(lines[i].code, r.pattern)) {
        emit(i, r.name, r.message);
      }
    }
  }

  // layering: every quoted include must stay within the layer DAG.
  const std::string my_layer = src_layer(fa.npath);
  if (!my_layer.empty()) {
    const int my_rank = layer_rank(my_layer);
    for (const IncludeRef& inc : fa.includes) {
      const std::string dep = include_layer(inc.path);
      if (dep.empty() || dep == my_layer) continue;
      if (layer_rank(dep) < my_rank) continue;
      emit(inc.line0, "layering",
           "layer '" + my_layer + "' must not include layer '" + dep +
               "' (\"" + inc.path +
               "\"); the DAG is common -> linalg -> {opt, runtime} -> gp "
               "-> core -> {apps, baselines}, and includes may only point "
               "at the same or a strictly lower layer");
    }
  }

  // lock-discipline, blanket part: records() hands out the HistoryDb store
  // without its mutex, anywhere outside the implementation.
  static const std::regex kRecords("(\\.|->)\\s*records\\s*\\(\\s*\\)");
  if (rule_applies("lock-discipline", fa.npath)) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i].code, kRecords)) {
        emit(i, "lock-discipline",
             "records() hands out the store without the HistoryDb mutex; "
             "use the guarded query API, or annotate a deliberate snapshot "
             "read");
      }
    }
  }

  // lock-discipline, field-level part: member access on a tracked
  // guarded-type variable must go through the guard-holding API.
  {
    GuardedNames local;
    collect_guarded_names(fa.npath, fa.lex, &local);
    for (const GuardedType& gt : guarded_types()) {
      if (in_home(gt, fa.npath)) continue;
      std::set<std::string> tracked = local[gt.type];
      if (auto it = cross_file_names.find(gt.type);
          it != cross_file_names.end()) {
        for (const std::string& n : it->second) {
          if (tracked.count(n) > 0) continue;
          if (shadowed_in_file(fa.lex, n, gt.type)) continue;
          tracked.insert(n);
        }
      }
      if (tracked.empty()) continue;
      for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string& code = lines[i].code;
        for (const std::string& name : tracked) {
          for (std::size_t pos : find_tokens(code, name)) {
            std::size_t after = pos + name.size();
            while (after < code.size() &&
                   (code[after] == ' ' || code[after] == '\t')) {
              ++after;
            }
            std::size_t member_at = std::string::npos;
            if (after < code.size() && code[after] == '.' &&
                (after + 1 >= code.size() || code[after + 1] != '.')) {
              member_at = after + 1;
            } else if (after + 1 < code.size() && code[after] == '-' &&
                       code[after + 1] == '>') {
              member_at = after + 2;
            }
            if (member_at == std::string::npos) continue;
            while (member_at < code.size() &&
                   (code[member_at] == ' ' || code[member_at] == '\t')) {
              ++member_at;
            }
            std::size_t mend = member_at;
            while (mend < code.size() && is_ident_char(code[mend])) ++mend;
            if (mend == member_at) continue;
            const std::string member = code.substr(member_at,
                                                   mend - member_at);
            if (member == "records") continue;  // the blanket check owns it
            if (gt.allowed.count(member) > 0) continue;
            emit(i, "lock-discipline",
                 "'" + name + "." + member + "' touches a " + gt.type +
                     " field outside its guard-holding API; the fields are "
                     "mutex-guarded (GPTUNE_GUARDED_BY) and only the "
                     "accessor methods take the lock");
          }
        }
      }
    }
  }

  // suppression-audit: every allow() directive must carry a written
  // reason. Findings are emitted directly — a suppression cannot vouch
  // for itself.
  {
    static const std::regex kReason("\\breason\\s*:\\s*\\S");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& comment = lines[i].comment;
      if (comment.empty()) continue;
      if (!std::regex_search(comment, directive_regex())) continue;
      if (std::regex_search(comment, kReason)) continue;
      findings.push_back(
          {"suppression-audit", fa.path, i + 1,
           "allow() directive without a justification; append `reason: "
           "<why this exemption is sound>` to the suppression comment",
           trim(fa.lex.raw[i])});
    }
  }

  // unordered-iter.
  UnorderedNames names;
  collect_unordered_names(lines, &names);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string expr = range_for_expr(lines[i].code);
    if (expr.empty()) continue;
    const bool direct = expr.find("unordered_") != std::string::npos;
    const bool tracked =
        std::all_of(expr.begin(), expr.end(), is_ident_char) &&
        names.vars.count(expr) > 0;
    if (direct || tracked) {
      emit(i, "unordered-iter",
           "iterating an unordered container ('" + expr +
               "') feeds hash order into the trajectory; use an ordered "
               "container or sort first");
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

// ---------------------------------------------------------------------------
// Cross-file passes

/// Include-cycle detection over the scanned set. Quoted include paths are
/// resolved against the scanned files by path suffix; cycles are reported
/// on the include line that closes them.
void detect_cycles(const std::vector<FileAnalysis>& fas,
                   std::vector<std::vector<Finding>>* extra) {
  const std::size_t n = fas.size();

  // Resolve includes to scanned-file indices (deterministic: first match
  // in sorted path order wins).
  struct Edge {
    std::size_t to;
    std::size_t line0;
    std::string inc;
  };
  std::vector<std::vector<Edge>> edges(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (const IncludeRef& inc : fas[u].includes) {
      const std::string suffix = "/" + normalize(inc.path);
      for (std::size_t v = 0; v < n; ++v) {
        const std::string& cand = fas[v].npath;
        const bool match =
            cand == normalize(inc.path) ||
            (cand.size() > suffix.size() &&
             cand.compare(cand.size() - suffix.size(), suffix.size(),
                          suffix) == 0);
        if (match) {
          edges[u].push_back({v, inc.line0, inc.path});
          break;
        }
      }
    }
  }

  // Iterative three-color DFS; a grey→grey edge closes a cycle.
  enum : unsigned char { kWhite, kGrey, kBlack };
  std::vector<unsigned char> color(n, kWhite);
  std::vector<std::size_t> on_stack;  // current grey chain, root first
  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{{root, 0}};
    color[root] = kGrey;
    on_stack.push_back(root);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      if (fr.next_edge >= edges[fr.node].size()) {
        color[fr.node] = kBlack;
        on_stack.pop_back();
        stack.pop_back();
        continue;
      }
      const Edge& e = edges[fr.node][fr.next_edge++];
      if (color[e.to] == kWhite) {
        color[e.to] = kGrey;
        on_stack.push_back(e.to);
        stack.push_back({e.to, 0});
      } else if (color[e.to] == kGrey) {
        // Reconstruct the cycle for the message.
        std::string chain;
        bool in_cycle = false;
        for (std::size_t node : on_stack) {
          if (node == e.to) in_cycle = true;
          if (in_cycle) chain += fas[node].npath + " -> ";
        }
        chain += fas[e.to].npath;
        (*extra)[fr.node].push_back(
            {"layering", fas[fr.node].path, e.line0 + 1,
             "include cycle: " + chain +
                 "; the include graph must stay a DAG",
             trim(fas[fr.node].lex.raw[e.line0])});
      }
    }
  }
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

bool is_cpp_source(const std::filesystem::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx", ".hpp",
                                              ".h",   ".hh", ".inl"};
  return kExts.count(p.extension().string()) > 0;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kInfos = [] {
    std::vector<RuleInfo> out;
    for (const Rule& r : pattern_rules()) out.push_back({r.name, r.summary});
    out.push_back(
        {"layering",
         "enforces the include-layer DAG (common -> linalg -> {opt, "
         "runtime} -> gp -> core -> {apps, baselines}) and an acyclic "
         "include graph"});
    out.push_back(
        {"lock-discipline",
         "bans HistoryDb/registry field access outside the guard-holding "
         "accessor API (and .records() outside src/core/history.*)"});
    out.push_back(
        {"suppression-audit",
         "requires every gptune-lint allow() directive to carry a "
         "`reason:` justification"});
    out.push_back(
        {"unordered-iter",
         "bans range-for over unordered containers (iteration order feeds "
         "the trajectory)"});
    return out;
  }();
  return kInfos;
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& content,
                                 std::size_t* suppressed) {
  FileAnalysis fa = prepare(path, content);
  return analyze_file(fa, GuardedNames{}, suppressed);
}

Result lint_sources(const std::vector<SourceFile>& files) {
  Result result;
  std::vector<FileAnalysis> fas;
  fas.reserve(files.size());
  for (const SourceFile& f : files) fas.push_back(prepare(f.path, f.content));
  result.files_scanned = fas.size();

  // Pass 1: guarded-type names from src/ files, shared across the set so
  // a member declared in a header is policed in every consumer.
  GuardedNames cross_file;
  for (const FileAnalysis& fa : fas) {
    if (fa.npath.find("src/") == std::string::npos) continue;
    collect_guarded_names(fa.npath, fa.lex, &cross_file);
  }

  // Cross-file include-graph cycles.
  std::vector<std::vector<Finding>> extra(fas.size());
  detect_cycles(fas, &extra);

  // Pass 2: per-file rules, with the cycle findings folded into each
  // file's (suppression-aware, sorted) result.
  for (std::size_t i = 0; i < fas.size(); ++i) {
    std::vector<Finding> f = analyze_file(fas[i], cross_file,
                                          &result.suppressed);
    for (Finding& cf : extra[i]) {
      if (is_allowed(fas[i], cf.line - 1, cf.rule)) {
        ++result.suppressed;
      } else {
        f.push_back(std::move(cf));
      }
    }
    std::sort(f.begin(), f.end(), [](const Finding& a, const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.rule < b.rule;
    });
    result.findings.insert(result.findings.end(), f.begin(), f.end());
  }
  return result;
}

Result lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  Result result;

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      if (fs::path(p).filename() == "lint_fixtures") continue;  // see below
      fs::recursive_directory_iterator it(p, ec), end;
      if (ec) {
        result.errors.push_back(p + ": " + ec.message());
        continue;
      }
      for (; it != end; it.increment(ec)) {
        if (ec) {
          result.errors.push_back(p + ": " + ec.message());
          break;
        }
        if (it->is_directory() &&
            it->path().filename() == "lint_fixtures") {
          // Deliberate rule violations for the lint test corpus; the
          // corpus is linted by tests/test_lint, not by tree scans.
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && is_cpp_source(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      result.errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      result.errors.push_back(file + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back({file, buf.str()});
  }

  Result scanned = lint_sources(sources);
  result.findings = std::move(scanned.findings);
  result.suppressed = scanned.suppressed;
  result.files_scanned = scanned.files_scanned;
  return result;
}

std::string to_json(const Result& result) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << result.files_scanned
     << ",\n  \"suppressed\": " << result.suppressed
     << ",\n  \"counts\": {";
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : result.findings) ++counts[f.rule];
  bool first = true;
  for (const auto& [rule, n] : counts) {
    os << (first ? "" : ", ");
    json_escape(os, rule);
    os << ": " << n;
    first = false;
  }
  os << "},\n  \"findings\": [";
  first = true;
  for (const Finding& f : result.findings) {
    os << (first ? "\n" : ",\n") << "    {\"rule\": ";
    json_escape(os, f.rule);
    os << ", \"file\": ";
    json_escape(os, f.file);
    os << ", \"line\": " << f.line << ", \"message\": ";
    json_escape(os, f.message);
    os << ", \"excerpt\": ";
    json_escape(os, f.excerpt);
    os << "}";
    first = false;
  }
  os << (first ? "]" : "\n  ]") << ",\n  \"errors\": [";
  first = true;
  for (const std::string& e : result.errors) {
    os << (first ? "" : ", ");
    json_escape(os, e);
    first = false;
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace gptune::lint
