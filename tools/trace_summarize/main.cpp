// trace_summarize CLI — digests a Chrome trace_event JSON file written by
// the telemetry layer (GPTUNE_TRACE=out.json) into per-phase tables: the
// top-N span names by total and self time, per category (model / search /
// objective / comm / pool), plus the thread identities seen.
//
//   trace_summarize [--top N] [--metrics metrics.json] [<trace.json>]
//   trace_summarize --selftest
//
// --metrics prints a GPTUNE_METRICS snapshot as tables: counters, gauges,
// and histograms with their p50/p95/p99 quantile estimates. It can be
// combined with a trace file or used alone.
//
// Self time = a span's duration minus the duration of spans nested inside
// it on the same thread (computed with a per-tid interval stack; complete
// events in a Chrome trace may appear in any order, so each thread's spans
// are sorted by start time first).
//
// Exit status: 0 ok, 1 invalid trace, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"

namespace {

using gptune::telemetry::JsonValue;

struct SpanRow {
  int tid = 0;
  std::string cat;
  std::string name;
  double ts = 0.0;   ///< microseconds
  double dur = 0.0;  ///< microseconds
};

struct NameTotals {
  double total_us = 0.0;
  double self_us = 0.0;
  std::size_t count = 0;
};

struct Summary {
  // cat -> span name -> totals (std::map: deterministic output order).
  std::map<std::string, std::map<std::string, NameTotals>> by_category;
  std::map<int, std::string> thread_names;
  std::size_t events = 0;
  std::size_t spans = 0;
};

bool summarize(const JsonValue& root, Summary& out, std::string& error) {
  const JsonValue* events = root.find("traceEvents");
  if (root.type() != JsonValue::Type::kObject || events == nullptr ||
      !events->is_array()) {
    error = "not a Chrome trace: expected {\"traceEvents\": [...]}";
    return false;
  }

  std::vector<SpanRow> spans;
  for (const JsonValue& e : events->items()) {
    if (!e.is_object()) {
      error = "traceEvents contains a non-object event";
      return false;
    }
    ++out.events;
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr) {
      error = "event without \"ph\"";
      return false;
    }
    const std::string& kind = ph->as_string();
    const JsonValue* tid = e.find("tid");
    const int t = tid != nullptr ? static_cast<int>(tid->as_number()) : 0;
    if (kind == "M") {
      const JsonValue* name = e.find("name");
      const JsonValue* args = e.find("args");
      if (name != nullptr && name->as_string() == "thread_name" &&
          args != nullptr && args->find("name") != nullptr) {
        out.thread_names[t] = args->find("name")->as_string();
      }
      continue;
    }
    if (kind != "X") continue;  // instants etc. carry no duration
    SpanRow row;
    row.tid = t;
    const JsonValue* cat = e.find("cat");
    const JsonValue* name = e.find("name");
    const JsonValue* ts = e.find("ts");
    const JsonValue* dur = e.find("dur");
    if (name == nullptr || ts == nullptr || dur == nullptr) {
      error = "complete event missing name/ts/dur";
      return false;
    }
    row.cat = cat != nullptr ? cat->as_string() : "(none)";
    row.name = name->as_string();
    row.ts = ts->as_number();
    row.dur = dur->as_number();
    spans.push_back(std::move(row));
  }
  out.spans = spans.size();

  // Self time per span: per thread, sweep spans in start order keeping a
  // stack of enclosing intervals; a span's duration is subtracted from the
  // nearest enclosing span on the same thread.
  std::map<int, std::vector<std::size_t>> by_tid;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    by_tid[spans[i].tid].push_back(i);
  }
  std::vector<double> self(spans.size());
  for (auto& [t, idx] : by_tid) {
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (spans[a].ts != spans[b].ts) return spans[a].ts < spans[b].ts;
      return spans[a].dur > spans[b].dur;  // outer span first on ties
    });
    std::vector<std::size_t> stack;
    for (std::size_t i : idx) {
      while (!stack.empty() &&
             spans[stack.back()].ts + spans[stack.back()].dur <=
                 spans[i].ts) {
        stack.pop_back();
      }
      self[i] = spans[i].dur;
      if (!stack.empty()) self[stack.back()] -= spans[i].dur;
      stack.push_back(i);
    }
  }

  for (std::size_t i = 0; i < spans.size(); ++i) {
    NameTotals& nt = out.by_category[spans[i].cat][spans[i].name];
    nt.total_us += spans[i].dur;
    nt.self_us += self[i];
    ++nt.count;
  }
  return true;
}

void print_summary(const Summary& s, std::size_t top_n) {
  std::printf("%zu events, %zu spans, %zu threads\n", s.events, s.spans,
              s.thread_names.size());
  for (const auto& [tid, name] : s.thread_names) {
    std::printf("  tid %-4d %s\n", tid, name.c_str());
  }
  for (const auto& [cat, names] : s.by_category) {
    std::printf("\n[%s] top spans by total time\n", cat.c_str());
    std::vector<std::pair<std::string, NameTotals>> rows(names.begin(),
                                                         names.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      if (a.second.total_us != b.second.total_us) {
        return a.second.total_us > b.second.total_us;
      }
      return a.first < b.first;
    });
    std::printf("  %-24s %10s %12s %12s\n", "name", "count", "total(ms)",
                "self(ms)");
    for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
      std::printf("  %-24s %10zu %12.3f %12.3f\n", rows[i].first.c_str(),
                  rows[i].second.count, rows[i].second.total_us / 1000.0,
                  rows[i].second.self_us / 1000.0);
    }
  }
}

/// Prints a metrics snapshot (counters/gauges/histograms); histograms
/// surface the p50/p95/p99 estimates the telemetry layer now emits.
bool print_metrics(const JsonValue& root, std::string& error) {
  if (!root.is_object()) {
    error = "not a metrics snapshot: expected an object";
    return false;
  }
  const JsonValue* counters = root.find("counters");
  const JsonValue* gauges = root.find("gauges");
  const JsonValue* histograms = root.find("histograms");
  if (counters == nullptr || gauges == nullptr || histograms == nullptr) {
    error = "not a metrics snapshot: missing counters/gauges/histograms";
    return false;
  }
  if (!counters->members().empty()) {
    std::printf("\n[counters]\n");
    for (const auto& [name, v] : counters->members()) {
      std::printf("  %-32s %14.0f\n", name.c_str(), v.as_number());
    }
  }
  if (!gauges->members().empty()) {
    std::printf("\n[gauges]\n");
    for (const auto& [name, v] : gauges->members()) {
      std::printf("  %-32s %14.6g\n", name.c_str(), v.as_number());
    }
  }
  if (!histograms->members().empty()) {
    std::printf("\n[histograms]\n");
    std::printf("  %-28s %8s %10s %10s %10s %10s %10s\n", "name", "count",
                "min", "p50", "p95", "p99", "max");
    for (const auto& [name, h] : histograms->members()) {
      if (!h.is_object()) {
        error = "histogram \"" + name + "\" is not an object";
        return false;
      }
      auto num = [&h](const char* key) {
        const JsonValue* v = h.find(key);
        return v != nullptr ? v->as_number() : 0.0;
      };
      std::printf("  %-28s %8.0f %10.4g %10.4g %10.4g %10.4g %10.4g\n",
                  name.c_str(), num("count"), num("min"), num("p50"),
                  num("p95"), num("p99"), num("max"));
    }
  }
  return true;
}

/// End-to-end smoke: synthesize a tiny trace in-process, round-trip it
/// through the JSON parser and the summarizer, and verify nesting math.
int selftest() {
  const std::string trace =
      "{\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"rank/0\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"objective/1\"}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"cat\":\"model\","
      "\"name\":\"fit_lcm\",\"ts\":0,\"dur\":100,\"args\":{\"vt\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"cat\":\"model\","
      "\"name\":\"cholesky\",\"ts\":10,\"dur\":40,\"args\":{\"vt\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"cat\":\"objective\","
      "\"name\":\"eval_item\",\"ts\":5,\"dur\":20,\"args\":{\"vt\":1.5}},\n"
      "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"cat\":\"comm\",\"name\":\"send\","
      "\"ts\":50,\"s\":\"t\",\"args\":{\"vt\":0}}\n"
      "]}\n";
  std::string error;
  const JsonValue root = JsonValue::parse(trace, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "selftest: parse failed: %s\n", error.c_str());
    return 1;
  }
  Summary s;
  if (!summarize(root, s, error)) {
    std::fprintf(stderr, "selftest: summarize failed: %s\n", error.c_str());
    return 1;
  }
  const NameTotals& fit = s.by_category.at("model").at("fit_lcm");
  const bool ok = s.events == 6 && s.spans == 3 &&
                  s.thread_names.size() == 2 && fit.total_us == 100.0 &&
                  fit.self_us == 60.0 &&  // 100 minus the nested cholesky
                  s.by_category.at("objective").at("eval_item").self_us ==
                      20.0;
  if (!ok) {
    std::fprintf(stderr, "selftest: wrong summary\n");
    print_summary(s, 10);
    return 1;
  }
  print_summary(s, 10);

  // Metrics snapshot round-trip, including the histogram quantile columns.
  const std::string metrics =
      "{\"counters\": {\"eval.items\": 12},\n"
      " \"gauges\": {\"async.occupancy\": 0.75},\n"
      " \"histograms\": {\"eval.seconds\": {\"count\": 4, \"sum\": 10,"
      " \"min\": 1, \"max\": 4, \"p50\": 2.5, \"p95\": 3.9, \"p99\": 4,"
      " \"buckets\": [{\"floor\": 1, \"count\": 4}]}}}\n";
  const JsonValue mroot = JsonValue::parse(metrics, &error);
  if (!error.empty() || !print_metrics(mroot, error)) {
    std::fprintf(stderr, "selftest: metrics failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("selftest ok\n");
  return 0;
}

void print_usage() {
  std::fprintf(stderr,
               "usage: trace_summarize [--top N] [--metrics metrics.json] "
               "[<trace.json>]\n"
               "       trace_summarize --selftest\n"
               "Summarizes a GPTUNE_TRACE Chrome trace_event file: top-N\n"
               "spans by total/self time per category, plus thread "
               "identities.\n"
               "--metrics additionally (or alone) prints a GPTUNE_METRICS\n"
               "snapshot: counters, gauges, histograms with p50/p95/p99.\n");
}

/// Reads a whole file; false (with message) when unreadable.
bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t top_n = 10;
  std::string path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--selftest") {
      return selftest();
    } else if (arg == "--top") {
      if (i + 1 >= argc) {
        print_usage();
        return 2;
      }
      top_n = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (top_n == 0) top_n = 10;
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) {
        print_usage();
        return 2;
      }
      metrics_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "trace_summarize: unknown option '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      print_usage();
      return 2;
    }
  }
  if (path.empty() && metrics_path.empty()) {
    print_usage();
    return 2;
  }

  if (!path.empty()) {
    std::string text;
    if (!read_file(path, text)) {
      std::fprintf(stderr, "trace_summarize: cannot read %s\n", path.c_str());
      return 2;
    }
    std::string error;
    const JsonValue root = JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "trace_summarize: %s: invalid JSON: %s\n",
                   path.c_str(), error.c_str());
      return 1;
    }
    Summary s;
    if (!summarize(root, s, error)) {
      std::fprintf(stderr, "trace_summarize: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    print_summary(s, top_n);
  }

  if (!metrics_path.empty()) {
    std::string text;
    if (!read_file(metrics_path, text)) {
      std::fprintf(stderr, "trace_summarize: cannot read %s\n",
                   metrics_path.c_str());
      return 2;
    }
    std::string error;
    const JsonValue root = JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "trace_summarize: %s: invalid JSON: %s\n",
                   metrics_path.c_str(), error.c_str());
      return 1;
    }
    if (!print_metrics(root, error)) {
      std::fprintf(stderr, "trace_summarize: %s: %s\n", metrics_path.c_str(),
                   error.c_str());
      return 1;
    }
  }
  return 0;
}
