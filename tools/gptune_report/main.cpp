// gptune_report CLI — merges a run manifest (GPTUNE_MANIFEST), a metrics
// snapshot (GPTUNE_METRICS or the manifest's embedded copy), an optional
// trace, and any flight-recorder dumps (GPTUNE_DUMP_DIR) into one
// human/CI-readable run report with rule-based anomaly flags
// (DESIGN.md §3.12):
//
//   incomplete-run       manifest status is not "complete"
//   crash-dump           a fatal-signal flight dump is present
//   flight-dump          an rtcheck/cooperative flight dump is present
//   low-occupancy        async worker occupancy below --min-occupancy
//   retry-storm          eval retries per attempt above --max-retry-rate
//   timeout-storm        eval timeouts per attempt above --max-timeout-rate
//   gram-collapse        Gram-cache hit rate collapsed (volume-floored)
//   refit-share          modeling share of virtual time above --max-refit-share
//   inflight-starvation  async in-flight depth mean far below the cap
//   bench-regression     a committed BENCH_*.json refit speedup below 1.0
//
//   gptune_report [--ci] --manifest FILE [--metrics FILE] [--trace FILE]
//                 [--dump-dir DIR] [--bench-dir DIR] [--last N] [thresholds]
//   gptune_report --selftest
//
// Exit status: 0 clean (or informational mode), 1 with --ci when any flag
// fired (or invalid input), 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry/json.hpp"

namespace {

using gptune::telemetry::JsonValue;

struct Thresholds {
  double min_occupancy = 0.5;     ///< async worker occupancy floor
  double max_retry_rate = 0.5;    ///< retries / attempts ceiling
  double max_timeout_rate = 0.25; ///< timeouts / attempts ceiling
  double min_gram_hit_rate = 0.3; ///< Gram-cache hits/(hits+misses) floor
  double max_refit_share = 0.75;  ///< modeling share of virtual time ceiling
  double min_depth_fraction = 0.25; ///< mean in-flight depth / cap floor
};

struct Flag {
  std::string rule;
  std::string detail;
};

double num_or(const JsonValue* obj, const char* key, double fallback) {
  if (obj == nullptr || !obj->is_object()) return fallback;
  const JsonValue* v = obj->find(key);
  return v != nullptr ? v->as_number() : fallback;
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

/// The rule engine: pure over parsed documents, exercised by --selftest.
std::vector<Flag> analyze(const JsonValue& manifest, const JsonValue* metrics,
                          const Thresholds& t) {
  std::vector<Flag> flags;
  auto flag = [&flags](std::string rule, std::string detail) {
    flags.push_back({std::move(rule), std::move(detail)});
  };

  const JsonValue* status = manifest.find("status");
  if (status == nullptr || status->as_string() != "complete") {
    flag("incomplete-run",
         "manifest status is \"" +
             (status != nullptr ? status->as_string() : std::string("?")) +
             "\" — the run never finalized (crash, hang, or kill)");
  }

  const JsonValue* options = manifest.find("options");
  const bool is_async =
      options != nullptr && options->find("async") != nullptr &&
      options->find("async")->as_bool();

  if (is_async) {
    const double occupancy = num_or(&manifest, "worker_occupancy", 0.0);
    if (occupancy > 0.0 && occupancy < t.min_occupancy) {
      flag("low-occupancy",
           "async worker occupancy " + fmt(occupancy) + " < " +
               fmt(t.min_occupancy) +
               " — objective workers starved (deep queues or a slow manager)");
    }
  }

  const JsonValue* eval_stats = manifest.find("eval_stats");
  const double attempts = num_or(eval_stats, "attempts", 0.0);
  if (attempts > 0.0) {
    const double retry_rate = num_or(eval_stats, "retries", 0.0) / attempts;
    if (retry_rate > t.max_retry_rate) {
      flag("retry-storm", "eval retries/attempt " + fmt(retry_rate) + " > " +
                              fmt(t.max_retry_rate));
    }
    const double timeout_rate = num_or(eval_stats, "timeouts", 0.0) / attempts;
    if (timeout_rate > t.max_timeout_rate) {
      flag("timeout-storm", "eval timeouts/attempt " + fmt(timeout_rate) +
                                " > " + fmt(t.max_timeout_rate));
    }
  }

  // Virtual-time share of modeling vs the whole run.
  const JsonValue* profiles = manifest.find("profiles");
  if (profiles != nullptr && profiles->is_array()) {
    double modeling = 0.0;
    double total = 0.0;
    for (const JsonValue& p : profiles->items()) {
      const double v = num_or(&p, "virtual_seconds", 0.0);
      total += v;
      const JsonValue* phase = p.find("phase");
      if (phase != nullptr && phase->as_string() == "modeling") modeling = v;
    }
    if (total > 0.0 && modeling / total > t.max_refit_share) {
      flag("refit-share",
           "modeling is " + fmt(modeling / total) +
               " of virtual run time (> " + fmt(t.max_refit_share) +
               ") — refits dominate; check refit_period/incremental_refit");
    }
  }

  // Metrics-driven rules (from --metrics or the manifest's embedded copy).
  const JsonValue* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  const double gram_hits = num_or(counters, "trainer.gram.hits", 0.0);
  const double gram_misses = num_or(counters, "trainer.gram.misses", 0.0);
  if (gram_hits + gram_misses >= 100.0) {
    const double rate = gram_hits / (gram_hits + gram_misses);
    if (rate < t.min_gram_hit_rate) {
      flag("gram-collapse", "Gram-cache hit rate " + fmt(rate) + " < " +
                                fmt(t.min_gram_hit_rate) + " over " +
                                fmt(gram_hits + gram_misses) + " lookups");
    }
  }

  if (is_async && metrics != nullptr) {
    const JsonValue* histograms = metrics->find("histograms");
    const JsonValue* depth =
        histograms != nullptr ? histograms->find("async.in_flight.depth")
                              : nullptr;
    const double count = num_or(depth, "count", 0.0);
    if (count > 0.0) {
      const double mean = num_or(depth, "sum", 0.0) / count;
      double cap = num_or(options, "async_inflight", 0.0);
      if (cap <= 0.0) cap = num_or(options, "batch_k", 0.0);
      if (cap > 0.0 && mean < t.min_depth_fraction * cap) {
        flag("inflight-starvation",
             "mean async in-flight depth " + fmt(mean) + " < " +
                 fmt(t.min_depth_fraction) + " x cap " + fmt(cap) +
                 " — the manager cannot keep the pipeline full");
      }
    }
  }

  return flags;
}

/// BENCH_*.json gate: committed refit-speedup baselines must stay >= 1.
/// Returns rows checked; regressions are appended as flags.
std::size_t check_bench_baselines(const std::string& dir,
                                  std::vector<Flag>& flags) {
  namespace fs = std::filesystem;
  std::size_t rows = 0;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const JsonValue root = JsonValue::parse(buffer.str(), &error);
    if (!error.empty() || !root.is_array()) continue;
    for (const JsonValue& row : root.items()) {
      const JsonValue* metric = row.find("metric");
      if (metric == nullptr) continue;
      const std::string& name = metric->as_string();
      if (name.rfind("refit_speedup", 0) != 0) continue;
      ++rows;
      const double value = num_or(&row, "value", 0.0);
      if (value < 1.0) {
        flags.push_back(
            {"bench-regression", path.filename().string() + ": " + name +
                                     " = " + fmt(value) + " < 1.0"});
      }
    }
  }
  return rows;
}

/// Renders one flight dump: reason plus the per-thread (per-rank) last-N
/// event timelines — what everyone did right before the end.
bool print_dump(const JsonValue& dump, const std::string& label,
                std::size_t last_n) {
  const JsonValue* schema = dump.find("schema");
  const JsonValue* rings = dump.find("rings");
  if (schema == nullptr ||
      schema->as_string().rfind("gptune-flight-dump/", 0) != 0 ||
      rings == nullptr || !rings->is_array()) {
    return false;
  }
  const JsonValue* reason = dump.find("reason");
  std::printf("\nflight dump %s (reason: %s, dropped %.0f)\n", label.c_str(),
              reason != nullptr ? reason->as_string().c_str() : "?",
              num_or(&dump, "dropped_events", 0.0));
  for (const JsonValue& ring : rings->items()) {
    const JsonValue* thread = ring.find("thread");
    const JsonValue* events = ring.find("events");
    if (events == nullptr || !events->is_array()) continue;
    const auto& items = events->items();
    const std::size_t n = std::min(last_n, items.size());
    std::printf("  [%s] last %zu of %.0f event(s):\n",
                thread != nullptr ? thread->as_string().c_str() : "?", n,
                num_or(&ring, "total_events",
                       static_cast<double>(items.size())));
    for (std::size_t i = items.size() - n; i < items.size(); ++i) {
      const JsonValue& e = items[i];
      const JsonValue* kind = e.find("kind");
      const JsonValue* cat = e.find("cat");
      const JsonValue* name = e.find("name");
      const JsonValue* text = e.find("text");
      std::printf("    %12.3fms %-10s", num_or(&e, "wall_us", 0.0) / 1000.0,
                  kind != nullptr ? kind->as_string().c_str() : "?");
      if (cat != nullptr) std::printf(" %s", cat->as_string().c_str());
      if (name != nullptr) std::printf("/%s", name->as_string().c_str());
      if (text != nullptr) std::printf(" %s", text->as_string().c_str());
      std::printf("\n");
    }
  }
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

void print_manifest_summary(const JsonValue& manifest) {
  const JsonValue* status = manifest.find("status");
  const JsonValue* git = manifest.find("git_describe");
  std::printf("run: status %s, git %s, seed %.0f, evaluations %.0f, "
              "model refits %.0f\n",
              status != nullptr ? status->as_string().c_str() : "?",
              git != nullptr ? git->as_string().c_str() : "?",
              num_or(&manifest, "seed", 0.0),
              num_or(&manifest, "evaluations", 0.0),
              num_or(&manifest, "model_refits", 0.0));
  const JsonValue* digest = manifest.find("trajectory_digest");
  const JsonValue* space = manifest.find("space");
  if (digest != nullptr || space != nullptr) {
    const JsonValue* hash = space != nullptr ? space->find("hash") : nullptr;
    std::printf("  space hash %s, trajectory digest %s\n",
                hash != nullptr ? hash->as_string().c_str() : "?",
                digest != nullptr ? digest->as_string().c_str() : "-");
  }
  const JsonValue* profiles = manifest.find("profiles");
  if (profiles != nullptr && profiles->is_array()) {
    for (const JsonValue& p : profiles->items()) {
      const JsonValue* phase = p.find("phase");
      std::printf("  phase %-10s invocations %6.0f  wall %9.4fs  "
                  "virtual %9.4fs\n",
                  phase != nullptr ? phase->as_string().c_str() : "?",
                  num_or(&p, "invocations", 0.0),
                  num_or(&p, "wall_seconds", 0.0),
                  num_or(&p, "virtual_seconds", 0.0));
    }
  }
  if (manifest.find("worker_occupancy") != nullptr) {
    std::printf("  worker occupancy %s\n",
                fmt(num_or(&manifest, "worker_occupancy", 0.0)).c_str());
  }
}

/// Brief trace digest: event counts per category (the full breakdown
/// belongs to trace_summarize).
void print_trace_summary(const JsonValue& root) {
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::printf("trace: not a Chrome trace\n");
    return;
  }
  std::vector<std::pair<std::string, std::size_t>> counts;
  for (const JsonValue& e : events->items()) {
    const JsonValue* cat = e.find("cat");
    if (cat == nullptr) continue;
    const std::string& name = cat->as_string();
    bool found = false;
    for (auto& [c, n] : counts) {
      if (c == name) {
        ++n;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(name, 1);
  }
  std::sort(counts.begin(), counts.end());
  std::printf("trace: %zu events (", events->items().size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::printf("%s%s %zu", i == 0 ? "" : ", ", counts[i].first.c_str(),
                counts[i].second);
  }
  std::printf(")\n");
}

int selftest() {
  const Thresholds t;
  // A healthy async run: complete, busy workers, deep queues, warm cache.
  const std::string clean =
      "{\"schema\": \"gptune-run-manifest/1\", \"status\": \"complete\","
      " \"options\": {\"async\": true, \"async_inflight\": 4, \"batch_k\": 4},"
      " \"worker_occupancy\": 0.8,"
      " \"eval_stats\": {\"attempts\": 100, \"retries\": 2, \"timeouts\": 1},"
      " \"profiles\": [{\"phase\": \"objective\", \"virtual_seconds\": 6},"
      "                {\"phase\": \"modeling\", \"virtual_seconds\": 3},"
      "                {\"phase\": \"search\", \"virtual_seconds\": 1}]}";
  const std::string clean_metrics =
      "{\"counters\": {\"trainer.gram.hits\": 900,"
      " \"trainer.gram.misses\": 100},"
      " \"gauges\": {},"
      " \"histograms\": {\"async.in_flight.depth\":"
      " {\"count\": 10, \"sum\": 35, \"min\": 2, \"max\": 4}}}";
  // The pathological one: starved workers and queues, cold cache, storms.
  const std::string sick =
      "{\"schema\": \"gptune-run-manifest/1\", \"status\": \"running\","
      " \"options\": {\"async\": true, \"async_inflight\": 8, \"batch_k\": 4},"
      " \"worker_occupancy\": 0.12,"
      " \"eval_stats\": {\"attempts\": 100, \"retries\": 80, \"timeouts\": 40},"
      " \"profiles\": [{\"phase\": \"objective\", \"virtual_seconds\": 1},"
      "                {\"phase\": \"modeling\", \"virtual_seconds\": 9},"
      "                {\"phase\": \"search\", \"virtual_seconds\": 0}]}";
  const std::string sick_metrics =
      "{\"counters\": {\"trainer.gram.hits\": 10,"
      " \"trainer.gram.misses\": 190},"
      " \"gauges\": {},"
      " \"histograms\": {\"async.in_flight.depth\":"
      " {\"count\": 10, \"sum\": 10, \"min\": 1, \"max\": 1}}}";

  std::string error;
  const JsonValue clean_m = JsonValue::parse(clean, &error);
  const JsonValue clean_x = JsonValue::parse(clean_metrics, &error);
  const JsonValue sick_m = JsonValue::parse(sick, &error);
  const JsonValue sick_x = JsonValue::parse(sick_metrics, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "selftest: parse failed: %s\n", error.c_str());
    return 1;
  }

  const auto clean_flags = analyze(clean_m, &clean_x, t);
  if (!clean_flags.empty()) {
    std::fprintf(stderr, "selftest: clean run flagged: %s\n",
                 clean_flags[0].rule.c_str());
    return 1;
  }

  const auto sick_flags = analyze(sick_m, &sick_x, t);
  auto has = [&sick_flags](const char* rule) {
    for (const auto& f : sick_flags) {
      if (f.rule == rule) return true;
    }
    return false;
  };
  const bool ok = has("incomplete-run") && has("low-occupancy") &&
                  has("retry-storm") && has("timeout-storm") &&
                  has("gram-collapse") && has("refit-share") &&
                  has("inflight-starvation");
  if (!ok) {
    std::fprintf(stderr, "selftest: expected flags missing; got:\n");
    for (const auto& f : sick_flags) {
      std::fprintf(stderr, "  [%s] %s\n", f.rule.c_str(), f.detail.c_str());
    }
    return 1;
  }

  // Dump rendering round-trip.
  const std::string dump =
      "{\"schema\": \"gptune-flight-dump/1\", \"reason\": \"rtcheck:deadlock\","
      " \"dropped_events\": 0, \"rings\": [{\"thread\": \"rank/0\","
      " \"total_events\": 2, \"events\": ["
      " {\"kind\": \"instant\", \"cat\": \"comm\", \"text\": \"send dst=1 "
      "tag=3\", \"wall_us\": 12.5, \"vt\": 0},"
      " {\"kind\": \"span_begin\", \"cat\": \"comm\", \"name\": \"recv\","
      " \"wall_us\": 14.5, \"vt\": 0}]}]}";
  const JsonValue dump_v = JsonValue::parse(dump, &error);
  if (!error.empty() || !print_dump(dump_v, "selftest", 16)) {
    std::fprintf(stderr, "selftest: dump rendering failed\n");
    return 1;
  }

  std::printf("selftest ok\n");
  return 0;
}

void print_usage() {
  std::fprintf(
      stderr,
      "usage: gptune_report [--ci] --manifest FILE [--metrics FILE]\n"
      "                     [--trace FILE] [--dump-dir DIR] [--bench-dir "
      "DIR]\n"
      "                     [--last N] [--min-occupancy X] [--max-retry-rate "
      "X]\n"
      "                     [--max-timeout-rate X] [--min-gram-hit-rate X]\n"
      "                     [--max-refit-share X] [--min-depth-fraction X]\n"
      "       gptune_report --selftest\n"
      "Merges a run manifest + metrics + trace + flight dumps into one\n"
      "report with rule-based anomaly flags; --ci exits 1 when any flag\n"
      "fires.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool ci = false;
  std::size_t last_n = 16;
  std::string manifest_path, metrics_path, trace_path, dump_dir, bench_dir;
  Thresholds t;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        print_usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--selftest") {
      return selftest();
    } else if (arg == "--ci") {
      ci = true;
    } else if (arg == "--manifest") {
      manifest_path = value();
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--dump-dir") {
      dump_dir = value();
    } else if (arg == "--bench-dir") {
      bench_dir = value();
    } else if (arg == "--last") {
      last_n = static_cast<std::size_t>(std::strtoul(value(), nullptr, 10));
      if (last_n == 0) last_n = 16;
    } else if (arg == "--min-occupancy") {
      t.min_occupancy = std::strtod(value(), nullptr);
    } else if (arg == "--max-retry-rate") {
      t.max_retry_rate = std::strtod(value(), nullptr);
    } else if (arg == "--max-timeout-rate") {
      t.max_timeout_rate = std::strtod(value(), nullptr);
    } else if (arg == "--min-gram-hit-rate") {
      t.min_gram_hit_rate = std::strtod(value(), nullptr);
    } else if (arg == "--max-refit-share") {
      t.max_refit_share = std::strtod(value(), nullptr);
    } else if (arg == "--min-depth-fraction") {
      t.min_depth_fraction = std::strtod(value(), nullptr);
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else {
      std::fprintf(stderr, "gptune_report: unknown option '%s'\n",
                   arg.c_str());
      print_usage();
      return 2;
    }
  }
  if (manifest_path.empty()) {
    print_usage();
    return 2;
  }

  std::string text;
  if (!read_file(manifest_path, text)) {
    std::fprintf(stderr, "gptune_report: cannot read %s\n",
                 manifest_path.c_str());
    return 2;
  }
  std::string error;
  const JsonValue manifest = JsonValue::parse(text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "gptune_report: %s: invalid JSON: %s\n",
                 manifest_path.c_str(), error.c_str());
    return 1;
  }
  const JsonValue* schema = manifest.find("schema");
  if (schema == nullptr ||
      schema->as_string().rfind("gptune-run-manifest/", 0) != 0) {
    std::fprintf(stderr, "gptune_report: %s: not a gptune run manifest\n",
                 manifest_path.c_str());
    return 1;
  }
  print_manifest_summary(manifest);

  // Metrics: an explicit file wins over the manifest's embedded snapshot.
  JsonValue metrics_owned;
  const JsonValue* metrics = manifest.find("metrics");
  if (!metrics_path.empty()) {
    if (!read_file(metrics_path, text)) {
      std::fprintf(stderr, "gptune_report: cannot read %s\n",
                   metrics_path.c_str());
      return 2;
    }
    metrics_owned = JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "gptune_report: %s: invalid JSON: %s\n",
                   metrics_path.c_str(), error.c_str());
      return 1;
    }
    metrics = &metrics_owned;
  }

  std::vector<Flag> flags = analyze(manifest, metrics, t);

  if (!trace_path.empty()) {
    if (!read_file(trace_path, text)) {
      std::fprintf(stderr, "gptune_report: cannot read %s\n",
                   trace_path.c_str());
      return 2;
    }
    const JsonValue trace = JsonValue::parse(text, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "gptune_report: %s: invalid JSON: %s\n",
                   trace_path.c_str(), error.c_str());
      return 1;
    }
    print_trace_summary(trace);
  }

  if (!dump_dir.empty()) {
    namespace fs = std::filesystem;
    std::vector<fs::path> dumps;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dump_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("flight_dump", 0) == 0 &&
          entry.path().extension() == ".json") {
        dumps.push_back(entry.path());
      }
    }
    std::sort(dumps.begin(), dumps.end());
    for (const auto& path : dumps) {
      if (!read_file(path.string(), text)) continue;
      const JsonValue dump = JsonValue::parse(text, &error);
      if (!error.empty() || !print_dump(dump, path.filename().string(),
                                        last_n)) {
        std::fprintf(stderr, "gptune_report: %s: not a flight dump\n",
                     path.string().c_str());
        continue;
      }
      const JsonValue* reason = dump.find("reason");
      const std::string why =
          reason != nullptr ? reason->as_string() : std::string("?");
      const bool crash = path.filename().string() == "flight_dump_crash.json";
      flags.push_back({crash ? "crash-dump" : "flight-dump",
                       path.filename().string() + " (reason: " + why + ")"});
    }
  }

  if (!bench_dir.empty()) {
    const std::size_t rows = check_bench_baselines(bench_dir, flags);
    std::printf("bench baselines: %zu refit-speedup row(s) checked\n", rows);
  }

  if (flags.empty()) {
    std::printf("\nreport: clean — no anomaly flags\n");
    return 0;
  }
  std::printf("\nreport: %zu anomaly flag(s)\n", flags.size());
  for (const auto& f : flags) {
    std::printf("  [%s] %s\n", f.rule.c_str(), f.detail.c_str());
  }
  return ci ? 1 : 0;
}
